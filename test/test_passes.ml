(* The instrumented pass manager, the structural plan verifier, and the
   pipeline configuration.

   Three pins hold the refactor together:
   1. the registered pipeline (all passes, registration order) produces
      structurally identical plans to the monolithic Peephole entry
      points, on the paper fixtures and on >= 500 random cases per
      paper encoding — with the verifier running after every pass;
   2. the verifier rejects seeded corruptions (dropped reservations,
      non-monotone chunk items, out-of-scope loop variables, undefined
      subroutines, bad decode hoists, slot misuse) with the expected
      diagnostics;
   3. Opt_config round-trips its string syntax, and the pass selection
      — but not the verify flag — separates plan-cache entries. *)

let test name f = Alcotest.test_case name `Quick f

let verify_all = { Opt_config.selection = Opt_config.All; verify = true }

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* -- 1. pipeline == monolith, verified after every pass --------------- *)

let fixture_specs () =
  List.concat_map
    (fun (enc, style) ->
      let pc = Paper_fixtures.bench_presc style in
      List.map
        (fun op -> (enc, Paper_fixtures.request_spec pc ~op))
        [ "send_ints"; "send_rects"; "send_dirents" ])
    [
      (Encoding.xdr, `Rpcgen);
      (Encoding.cdr, `Corba);
      (Encoding.mach3, `Rpcgen);
    ]

let to_droot = function
  | Stub_opt.Dconst_int (v, k) -> Dplan_compile.Dconst_int (v, k)
  | Stub_opt.Dconst_str s -> Dplan_compile.Dconst_str s
  | Stub_opt.Dvalue (i, p) -> Dplan_compile.Dvalue (i, p)

let fixture_tests =
  [
    test "default pipeline = monolithic peephole on the paper fixtures"
      (fun () ->
        List.iter
          (fun (enc, spec) ->
            let mint = spec.Paper_fixtures.ms_mint
            and named = spec.Paper_fixtures.ms_named in
            List.iter
              (fun chunked ->
                let raw =
                  Plan_compile.compile ~enc ~mint ~named ~chunked
                    spec.Paper_fixtures.ms_roots
                in
                let piped = Pass.run_encode ~config:verify_all raw in
                Alcotest.(check bool)
                  (Printf.sprintf "%s chunked=%b: encode pipeline = monolith"
                     enc.Encoding.name chunked)
                  true
                  (piped = Peephole.optimize_plan raw))
              [ true; false ];
            let draw =
              Dplan_compile.compile ~enc ~mint ~named
                (List.map to_droot spec.Paper_fixtures.ms_droots)
            in
            let dpiped = Pass.run_decode ~config:verify_all draw in
            Alcotest.(check bool)
              (Printf.sprintf "%s: decode pipeline = monolith"
                 enc.Encoding.name)
              true
              (dpiped = Peephole.optimize_dplan draw))
          (fixture_specs ()));
    test "trace instrumentation: every pass, chained counts" (fun () ->
        let pc = Paper_fixtures.bench_presc `Rpcgen in
        let spec = Paper_fixtures.request_spec pc ~op:"send_dirents" in
        let raw =
          Plan_compile.compile ~enc:Encoding.xdr
            ~mint:spec.Paper_fixtures.ms_mint
            ~named:spec.Paper_fixtures.ms_named ~chunked:false
            spec.Paper_fixtures.ms_roots
        in
        let traces = ref [] in
        ignore
          (Pass.run_encode ~config:verify_all
             ~on_trace:(fun tr -> traces := !traces @ [ tr ])
             raw);
        let traces = !traces in
        Alcotest.(check (list string))
          "one trace per registered pass, in order" Pass.encode_pass_names
          (List.map (fun (tr : Pass.trace) -> tr.Pass.tr_pass) traces);
        let raw_nodes = Pass.encode_side.Pass.s_nodes raw in
        (match traces with
        | first :: _ ->
            Alcotest.(check int)
              "first pass sees the compiler's node count" raw_nodes
              first.Pass.tr_nodes_before
        | [] -> Alcotest.fail "no traces");
        List.iter
          (fun (tr : Pass.trace) ->
            Alcotest.(check bool)
              (tr.Pass.tr_pass ^ ": verified flag set") true
              tr.Pass.tr_verified;
            Alcotest.(check string) "side" "encode" tr.Pass.tr_side)
          traces;
        ignore
          (List.fold_left
             (fun prev (tr : Pass.trace) ->
               (match prev with
               | Some n ->
                   Alcotest.(check int)
                     (tr.Pass.tr_pass ^ ": counts chain") n
                     tr.Pass.tr_nodes_before
               | None -> ());
               Some tr.Pass.tr_nodes_after)
             None traces));
    test "empty selection returns the compiler's plan untouched" (fun () ->
        let pc = Paper_fixtures.bench_presc `Rpcgen in
        let spec = Paper_fixtures.request_spec pc ~op:"send_rects" in
        let raw =
          Plan_compile.compile ~enc:Encoding.xdr
            ~mint:spec.Paper_fixtures.ms_mint
            ~named:spec.Paper_fixtures.ms_named ~chunked:false
            spec.Paper_fixtures.ms_roots
        in
        let traces = ref 0 in
        let out =
          Pass.run_encode ~config:Opt_config.none
            ~on_trace:(fun _ -> incr traces)
            raw
        in
        Alcotest.(check bool) "identical" true (out = raw);
        Alcotest.(check int) "no passes ran" 0 !traces);
  ]

(* -- random plans: pipeline verified pass-by-pass, equal to monolith -- *)

let rng = Random.State.make [| 0x9a55 |]

let pipeline_prop enc (c : Test_engines.case) =
  let mint = c.Test_engines.mint and named = c.Test_engines.named in
  let roots = Test_engines.roots_of c in
  let v =
    Workload.random rng mint ~named c.Test_engines.idx c.Test_engines.pres
  in
  let encode plan =
    let buf = Mbuf.create 64 in
    Stub_opt.encoder_of_plan ~enc plan buf [| v |];
    Bytes.to_string (Mbuf.contents buf)
  in
  List.iter
    (fun chunked ->
      let raw = Plan_compile.compile ~enc ~mint ~named ~chunked roots in
      (* verify_all makes the runner verify the compiler's output and
         every pass's output; any violation raises Pass.Verify_failed,
         which qcheck reports as the counterexample *)
      let piped = Pass.run_encode ~config:verify_all raw in
      if piped <> Peephole.optimize_plan raw then
        QCheck.Test.fail_reportf
          "encode pipeline (chunked=%b) differs from monolith on %s" chunked
          c.Test_engines.label;
      (* keep the wire honest too: the piped plan encodes the same bytes *)
      if encode piped <> encode raw then
        QCheck.Test.fail_reportf "pipeline changed bytes (chunked=%b) on %s"
          chunked c.Test_engines.label)
    [ true; false ];
  let draw =
    Dplan_compile.compile ~enc ~mint ~named
      [ Dplan_compile.Dvalue (c.Test_engines.idx, c.Test_engines.pres) ]
  in
  let dpiped = Pass.run_decode ~config:verify_all draw in
  if dpiped <> Peephole.optimize_dplan draw then
    QCheck.Test.fail_reportf "decode pipeline differs from monolith on %s"
      c.Test_engines.label;
  true

let property_tests =
  List.map
    (fun enc ->
      QCheck_alcotest.to_alcotest
        (QCheck.Test.make ~count:500
           ~name:
             (Printf.sprintf
                "%s: 500 random plans verified after every pass, pipeline = \
                 monolith"
                enc.Encoding.name)
           Test_engines.arbitrary_case (pipeline_prop enc)))
    [ Encoding.xdr; Encoding.cdr; Encoding.mach3 ]

(* -- 2. seeded corruptions are rejected ------------------------------- *)

let a32 =
  {
    Mplan.kind = Encoding.Kint { bits = 32; signed = true };
    size = 4;
    align = 4;
  }

let p0 = Mplan.Rparam { index = 0; name = "p"; deref = false }
let seq_via = Mplan.Via_seq { len_field = "len"; buf_field = "val" }

let expect_reject what (result : (unit, Plan_verify.error) result) needle =
  match result with
  | Ok () -> Alcotest.failf "%s: verifier accepted the corrupted plan" what
  | Error e ->
      let msg = Plan_verify.error_to_string e in
      if not (contains msg needle) then
        Alcotest.failf "%s: diagnostic %S does not mention %S" what msg needle

let eplan ops = { Plan_compile.p_ops = ops; p_subs = [] }

let negative_tests =
  [
    test "corruption: unchecked chunk without covering reservation"
      (fun () ->
        (* the ensure the compiler would emit before the loop, dropped *)
        let plan =
          eplan
            [
              Mplan.Loop
                {
                  arr = p0;
                  via = seq_via;
                  var = 0;
                  body =
                    [
                      Mplan.Chunk
                        {
                          size = 4;
                          align = 4;
                          items =
                            [
                              Mplan.It_atom
                                { off = 0; atom = a32; src = Mplan.Rvar 0 };
                            ];
                          check = false;
                        };
                    ];
                };
            ]
        in
        expect_reject "dropped ensure" (Plan_verify.check_plan plan)
          "dropped ensure";
        (* and the same shape with the reservation present is accepted *)
        let ok =
          eplan
            [
              Mplan.Ensure_count { arr = p0; via = seq_via; unit_size = 4 };
              Mplan.Loop
                {
                  arr = p0;
                  via = seq_via;
                  var = 0;
                  body =
                    [
                      Mplan.Chunk
                        {
                          size = 4;
                          align = 4;
                          items =
                            [
                              Mplan.It_atom
                                { off = 0; atom = a32; src = Mplan.Rvar 0 };
                            ];
                          check = false;
                        };
                    ];
                };
            ]
        in
        Alcotest.(check bool)
          "covered shape accepted" true
          (Plan_verify.check_plan ok = Ok ()));
    test "corruption: overlapping chunk item offsets" (fun () ->
        let plan =
          eplan
            [
              Mplan.Chunk
                {
                  size = 8;
                  align = 4;
                  items =
                    [
                      Mplan.It_atom { off = 0; atom = a32; src = p0 };
                      Mplan.It_atom { off = 2; atom = a32; src = p0 };
                    ];
                  check = true;
                };
            ]
        in
        expect_reject "overlap" (Plan_verify.check_plan plan) "not monotone");
    test "corruption: chunk item past the chunk's span" (fun () ->
        let plan =
          eplan
            [
              Mplan.Chunk
                {
                  size = 2;
                  align = 4;
                  items = [ Mplan.It_atom { off = 0; atom = a32; src = p0 } ];
                  check = true;
                };
            ]
        in
        expect_reject "extent" (Plan_verify.check_plan plan) "extends past");
    test "corruption: loop variable referenced out of scope" (fun () ->
        let plan =
          eplan
            [
              Mplan.Chunk
                {
                  size = 4;
                  align = 4;
                  items =
                    [ Mplan.It_atom { off = 0; atom = a32; src = Mplan.Rvar 3 } ];
                  check = true;
                };
            ]
        in
        expect_reject "scope" (Plan_verify.check_plan plan) "out of scope");
    test "corruption: call to an undefined marshal subroutine" (fun () ->
        expect_reject "call"
          (Plan_verify.check_plan (eplan [ Mplan.Call ("node_17", p0) ]))
          "undefined marshal subroutine");
    test "corruption: decode shape reads a slot no op writes" (fun () ->
        let plan =
          {
            Dplan.d_nslots = 1;
            d_ops = [];
            d_shapes = [ Dplan.Sh_slot 0 ];
            d_subs = [];
          }
        in
        expect_reject "undefined slot" (Plan_verify.check_dplan plan)
          "no op writes");
    test "corruption: hoisted decode reservation with the wrong stride"
      (fun () ->
        let frame u =
          {
            Dplan.d_nslots = 1;
            d_ops =
              [
                Dplan.D_loop
                  {
                    count = Dplan.Dc_fixed 2;
                    ensure = Some u;
                    frame =
                      {
                        Dplan.f_nslots = 1;
                        f_ops =
                          [
                            Dplan.D_chunk
                              {
                                size = 4;
                                items =
                                  [
                                    Dplan.Dit_atom
                                      { off = 0; atom = a32; slot = 0 };
                                  ];
                                check = false;
                              };
                          ];
                        f_shape = Dplan.Sh_slot 0;
                      };
                    slot = 0;
                  };
              ];
            d_shapes = [ Dplan.Sh_slot 0 ];
            d_subs = [];
          }
        in
        expect_reject "bad stride"
          (Plan_verify.check_dplan (frame 8))
          "consumes exactly";
        Alcotest.(check bool)
          "correct stride accepted" true
          (Plan_verify.check_dplan (frame 4) = Ok ()));
    test "corruption: decode slot written twice" (fun () ->
        let plan =
          {
            Dplan.d_nslots = 1;
            d_ops =
              [
                Dplan.D_get_string { max_len = None; slot = 0; view = false };
                Dplan.D_get_string { max_len = None; slot = 0; view = false };
              ];
            d_shapes = [ Dplan.Sh_slot 0 ];
            d_subs = [];
          }
        in
        expect_reject "double write" (Plan_verify.check_dplan plan)
          "written twice");
    test "the pass manager raises Verify_failed on corrupt input" (fun () ->
        let bad = eplan [ Mplan.Call ("node_17", p0) ] in
        match Pass.run_encode ~config:verify_all bad with
        | _ -> Alcotest.fail "expected Verify_failed"
        | exception Pass.Verify_failed { side; pass; error } ->
            Alcotest.(check string) "side" "encode" side;
            Alcotest.(check string) "blamed on the compiler" "<compile>" pass;
            Alcotest.(check bool)
              "diagnostic names the subroutine" true
              (contains
                 (Plan_verify.error_to_string error)
                 "undefined marshal subroutine"));
  ]

(* -- 2b. Decode-side loop-scalar fusion ------------------------------- *)

(* The compiler lowers scalar arrays to D_get_atom_array directly, so
   this pass only ever fires on loops produced by hand or by other
   rewrites — the goldens here are hand-built, with node counts pinned
   so a change in what fuses is a diff, not a silent drift. *)

let achar = { Mplan.kind = Encoding.Kchar; size = 1; align = 1 }

let scalar_loop ?(atom = achar) ?(size = atom.Mplan.size) ?(check = true) ()
    =
  {
    Dplan.d_nslots = 1;
    d_ops =
      [
        Dplan.D_loop
          {
            count = Dplan.Dc_fixed 3;
            ensure = None;
            frame =
              {
                Dplan.f_nslots = 1;
                f_ops =
                  [
                    Dplan.D_chunk
                      {
                        size;
                        items =
                          [ Dplan.Dit_atom { off = 0; atom; slot = 0 } ];
                        check;
                      };
                  ];
                f_shape = Dplan.Sh_slot 0;
              };
            slot = 0;
          };
      ];
    d_shapes = [ Dplan.Sh_slot 0 ];
    d_subs = [];
  }

let fusion_tests =
  [
    test "gapless scalar char loop fuses into one atom-array read" (fun () ->
        let plan = scalar_loop () in
        Alcotest.(check int) "node count before" 3
          (Dplan.count_ops plan.Dplan.d_ops);
        let fused =
          Pass.run_decode
            ~config:
              {
                Opt_config.selection =
                  Opt_config.Only [ "loop-scalar-fusion" ];
                verify = true;
              }
            plan
        in
        (match fused.Dplan.d_ops with
        | [ Dplan.D_get_atom_array
              { count = Dplan.Dc_fixed 3; atom; slot = 0 } ] ->
            Alcotest.(check bool) "atom preserved" true (atom = achar)
        | _ -> Alcotest.fail "expected one D_get_atom_array");
        Alcotest.(check int) "node count after" 1
          (Dplan.count_ops fused.Dplan.d_ops);
        Alcotest.(check bool) "fused plan verifies" true
          (Plan_verify.check_dplan fused = Ok ());
        (* loop and fused forms decode the same bytes to the same value *)
        let wire = Bytes.of_string "abc" in
        let dec p = Stub_opt.decoder_of_dplan ~enc:Encoding.xdr p in
        Alcotest.(check bool) "same decode" true
          (dec plan (Mbuf.reader_of_bytes wire)
          = dec fused (Mbuf.reader_of_bytes wire)));
    test "integer loops do not fuse (array reads build Vint_array)"
      (fun () ->
        let plan = scalar_loop ~atom:a32 ~size:4 () in
        let fused =
          Pass.run_decode
            ~config:
              {
                Opt_config.selection =
                  Opt_config.Only [ "loop-scalar-fusion" ];
                verify = true;
              }
            plan
        in
        match fused.Dplan.d_ops with
        | [ Dplan.D_loop _ ] -> ()
        | _ -> Alcotest.fail "expected the loop to survive");
    test "strided frames do not fuse (chunk wider than the atom)" (fun () ->
        let plan = scalar_loop ~size:2 () in
        let fused =
          Pass.run_decode
            ~config:
              {
                Opt_config.selection =
                  Opt_config.Only [ "loop-scalar-fusion" ];
                verify = true;
              }
            plan
        in
        match fused.Dplan.d_ops with
        | [ Dplan.D_loop _ ] -> ()
        | _ -> Alcotest.fail "expected the loop to survive");
    test "verifier: atom-array stride must be a multiple of its alignment"
      (fun () ->
        let bad =
          {
            Dplan.d_nslots = 1;
            d_ops =
              [
                Dplan.D_get_atom_array
                  {
                    count = Dplan.Dc_fixed 1;
                    atom =
                      {
                        Mplan.kind = Encoding.Kfloat { bits = 48 };
                        size = 6;
                        align = 4;
                      };
                    slot = 0;
                  };
              ];
            d_shapes = [ Dplan.Sh_slot 0 ];
            d_subs = [];
          }
        in
        expect_reject "bad stride" (Plan_verify.check_dplan bad)
          "multiple of its alignment");
  ]

(* -- 3. Opt_config syntax and cache-key behavior ---------------------- *)

let config_tests =
  [
    test "of_string / to_string round-trips" (fun () ->
        (* canonical spellings print back verbatim *)
        List.iter
          (fun s ->
            match Opt_config.of_string s with
            | Ok c -> Alcotest.(check string) s s (Opt_config.to_string c)
            | Error msg -> Alcotest.failf "%S rejected: %s" s msg)
          [
            "all"; "none"; "all+verify"; "none+verify"; "only:chunk-coalesce";
            "only:chunk-coalesce,ensure-hoist"; "only:loop-blit-fusion+verify";
          ];
        (* a bare pass list parses to the same config as its canonical form *)
        match Opt_config.of_string "chunk-coalesce,ensure-hoist+verify" with
        | Ok c ->
            Alcotest.(check string) "canonicalized"
              "only:chunk-coalesce,ensure-hoist+verify"
              (Opt_config.to_string c)
        | Error msg -> Alcotest.failf "bare list rejected: %s" msg);
    test "of_string rejects the empty selection" (fun () ->
        match Opt_config.of_string "" with
        | Ok _ -> Alcotest.fail "empty string accepted"
        | Error _ -> ());
    test "validate rejects unknown pass names, listing the registry"
      (fun () ->
        match Pass.validate (Opt_config.only [ "chunk-coalesce"; "bogus" ]) with
        | Ok () -> Alcotest.fail "unknown pass accepted"
        | Error msg ->
            Alcotest.(check bool) "names the offender" true
              (contains msg "bogus");
            Alcotest.(check bool) "lists known passes" true
              (contains msg "chunk-coalesce"));
    test "selection fingerprints distinguish pipelines, ignore verify"
      (fun () ->
        let fp c = Opt_config.selection_fingerprint c in
        Alcotest.(check bool) "all <> none" true
          (fp Opt_config.all <> fp Opt_config.none);
        Alcotest.(check bool) "all <> subset" true
          (fp Opt_config.all <> fp (Opt_config.only [ "chunk-coalesce" ]));
        Alcotest.(check string) "verify not keyed"
          (fp Opt_config.all)
          (fp { Opt_config.all with Opt_config.verify = true }));
    test "pass selection separates plan-cache entries" (fun () ->
        let pc = Paper_fixtures.bench_presc `Rpcgen in
        let spec = Paper_fixtures.request_spec pc ~op:"send_dirents" in
        let get config =
          Plan_cache.plan ~enc:Encoding.xdr ~mint:spec.Paper_fixtures.ms_mint
            ~named:spec.Paper_fixtures.ms_named ~chunked:false ~config
            spec.Paper_fixtures.ms_roots
        in
        (* same selection -> same cached object; different selection ->
           different entry (and here, a genuinely different plan) *)
        Alcotest.(check bool)
          "all cached once" true
          (get Opt_config.all == get Opt_config.all);
        Alcotest.(check bool)
          "none cached separately" true
          (get Opt_config.none != get Opt_config.all);
        Alcotest.(check bool)
          "unoptimized plan really is different" true
          (get Opt_config.none <> get Opt_config.all);
        Alcotest.(check bool)
          "verify flag does not split the cache" true
          (get { Opt_config.all with Opt_config.verify = true }
          == get Opt_config.all));
    test "cache stats expose evictions in one record" (fun () ->
        let c = Plan_cache.create ~name:"test.evict" ~max_entries:4 () in
        for i = 1 to 9 do
          ignore (Plan_cache.find_or_add c (string_of_int i) (fun () -> i))
        done;
        let st = Plan_cache.cache_stats c in
        Alcotest.(check int) "misses" 9 st.Plan_cache.misses;
        Alcotest.(check bool) "evictions counted" true
          (st.Plan_cache.evictions >= 4);
        Alcotest.(check bool) "hit_rate bounded" true
          (Plan_cache.hit_rate st >= 0. && Plan_cache.hit_rate st <= 1.));
  ]

(* -- fixpoint iteration ----------------------------------------------- *)

(* The manager repeats the selected pipeline until a round records zero
   rewrites (bounded by max_rounds).  The pin: run fusion BEFORE
   coalescing on a loop whose body only fuses after coalescing has
   normalized it — round 1 coalesces, round 2 fuses, round 3 finds
   nothing and is silent.  A single-round manager would miss the fusion
   entirely. *)

let a32 =
  { Mplan.kind = Encoding.Kint { bits = 32; signed = false }; size = 4; align = 4 }

let two_chunk_loop () =
  let arr = Mplan.Rparam { index = 0; name = "xs"; deref = false } in
  {
    Plan_compile.p_ops =
      [
        Mplan.Loop
          {
            arr;
            via = Mplan.Via_seq { len_field = "len"; buf_field = "val" };
            var = 0;
            body =
              [
                Mplan.Chunk
                  {
                    size = 4;
                    align = 4;
                    items =
                      [ Mplan.It_atom { off = 0; atom = a32; src = Mplan.Rvar 0 } ];
                    check = true;
                  };
                (* the no-op chunk coalescing deletes; until it does,
                   the two-op body blocks fusion *)
                Mplan.Chunk { size = 0; align = 1; items = []; check = false };
              ];
          };
      ];
    p_subs = [];
  }

let fixpoint_tests =
  [
    test "chunk-coalesce exposes loop-blit-fusion on round 2" (fun () ->
        let config =
          {
            (Opt_config.only [ "loop-blit-fusion"; "chunk-coalesce" ]) with
            Opt_config.verify = true;
          }
        in
        let traces = ref [] in
        let out =
          Pass.run_encode ~config
            ~on_trace:(fun tr -> traces := !traces @ [ tr ])
            (two_chunk_loop ())
        in
        (* the fused result: one tight array blit, no loop left *)
        (match out.Plan_compile.p_ops with
        | [ Mplan.Put_atom_array { atom; with_len = false; _ } ] ->
            Alcotest.(check int) "fused atom size" 4 atom.Mplan.size
        | ops ->
            Alcotest.failf "expected a fused Put_atom_array, got %d ops"
              (List.length ops));
        (* rounds 1 and 2 both rewrote, so both are traced in caller
           order; the silent round 3 leaves no rows *)
        Alcotest.(check (list (pair string int)))
          "pipeline order and rounds"
          [
            ("loop-blit-fusion", 1); ("chunk-coalesce", 1);
            ("loop-blit-fusion", 2); ("chunk-coalesce", 2);
          ]
          (List.map
             (fun (tr : Pass.trace) -> (tr.Pass.tr_pass, tr.Pass.tr_round))
             !traces);
        (* round 2's fusion is the row that did the work *)
        match
          List.find_opt
            (fun (tr : Pass.trace) ->
              tr.Pass.tr_pass = "loop-blit-fusion" && tr.Pass.tr_round = 2)
            !traces
        with
        | Some tr ->
            Alcotest.(check bool) "round-2 fusion shrank the plan" true
              (tr.Pass.tr_nodes_after < tr.Pass.tr_nodes_before)
        | None -> Alcotest.fail "no round-2 fusion row");
    test "registration order converges in one round on the same plan"
      (fun () ->
        (* the default order (coalesce before fuse) needs no second
           round: its round 2 does zero rewrites and is suppressed, so
           the trace shows exactly the registered passes once *)
        let traces = ref [] in
        let out =
          Pass.run_encode ~config:verify_all
            ~on_trace:(fun tr -> traces := !traces @ [ tr ])
            (two_chunk_loop ())
        in
        (match out.Plan_compile.p_ops with
        | [ Mplan.Put_atom_array _ ] -> ()
        | _ -> Alcotest.fail "expected the same fused result");
        Alcotest.(check (list string))
          "single traced round" Pass.encode_pass_names
          (List.map (fun (tr : Pass.trace) -> tr.Pass.tr_pass) !traces));
    test "a pass that always rewrites stops at max_rounds" (fun () ->
        let calls = ref 0 in
        let spin =
          {
            Pass.p_name = "spin";
            p_transform =
              (fun ?stats p ->
                incr calls;
                (match stats with
                | Some st ->
                    st.Peephole.chunks_merged <- st.Peephole.chunks_merged + 1
                | None -> ());
                p);
          }
        in
        let side =
          {
            Pass.s_name = "encode";
            s_nodes = (fun _ -> 1);
            s_checks = (fun _ -> 0);
            s_verify = (fun _ -> Ok ());
          }
        in
        let rounds = ref [] in
        ignore
          (Pass.run
             ~config:{ Opt_config.selection = Opt_config.All; verify = false }
             ~on_trace:(fun tr -> rounds := !rounds @ [ tr.Pass.tr_round ])
             side [ spin ] ());
        Alcotest.(check int) "transform ran max_rounds times" Pass.max_rounds
          !calls;
        Alcotest.(check (list int))
          "every round traced (each one rewrote)"
          [ 1; 2; 3; 4 ] !rounds);
  ]

(* -- cache overflow resets -------------------------------------------- *)

let reset_tests =
  [
    test "overflow resets are counted separately from evictions" (fun () ->
        let c = Plan_cache.create ~name:"test.resets" ~max_entries:2 () in
        for i = 1 to 5 do
          ignore (Plan_cache.find_or_add c (string_of_int i) (fun () -> i))
        done;
        (* inserting 3 drops {1,2} (2 evictions, 1 reset); inserting 5
           drops {3,4} (2 more evictions, 1 more reset) *)
        let st = Plan_cache.cache_stats c in
        Alcotest.(check int) "misses" 5 st.Plan_cache.misses;
        Alcotest.(check int) "evictions" 4 st.Plan_cache.evictions;
        Alcotest.(check int) "resets" 2 st.Plan_cache.resets;
        Alcotest.(check int) "entries" 1 st.Plan_cache.entries;
        (* reset_all zeroes the odometer too *)
        Plan_cache.reset_all ();
        let st = Plan_cache.cache_stats c in
        Alcotest.(check int) "resets cleared" 0 st.Plan_cache.resets);
  ]

(* -- 2b. reservation sizing: the mach3 union-in-sequence overrun ------ *)

(* A sequence of 13-byte union elements under a 4-alignment advances 16
   bytes per iteration (3 bytes of leading pad), so a reservation sized
   from the unpadded element under-covers and the loop's unchecked
   stores run off the chunk.  The compiler bug was omitting the typed
   descriptor word from the union discriminator's max-size; both the
   type-level fix and the verifier's sufficiency check pin here. *)

let seq_union_case () =
  let mint = Mint.create () in
  let ch = Mint.char8 mint in
  let discrim = Mint.int32 mint in
  let u =
    Mint.union mint ~discrim
      ~cases:[ { Mint.c_const = Mint.Cint 0L; c_body = ch } ]
      ~default:None
  in
  let sequ = Mint.array mint ~elem:u ~min_len:0 ~max_len:(Some 8) in
  let upres =
    Pres.Union
      {
        discrim_field = "_d";
        union_field = "_u";
        arms = [ ("a0", Pres.Direct) ];
        default_arm = None;
      }
  in
  let pres =
    Pres.Counted_seq { len_field = "len"; buf_field = "val"; elem = upres }
  in
  (mint, sequ, pres)

let reservation_tests =
  [
    test "verifier rejects an under-sized loop reservation" (fun () ->
        (* per-iteration worst case: 3 (align pad) + 13 (chunk) = 16 *)
        let body =
          [
            Mplan.Align 4;
            Mplan.Chunk
              {
                size = 13;
                align = 1;
                items =
                  [ Mplan.It_atom { off = 0; atom = a32; src = Mplan.Rvar 0 } ];
                check = false;
              };
          ]
        in
        let plan unit_size =
          eplan
            [
              Mplan.Ensure_count { arr = p0; via = seq_via; unit_size };
              Mplan.Loop { arr = p0; via = seq_via; var = 0; body };
            ]
        in
        expect_reject "15-byte unit" (Plan_verify.check_plan (plan 15))
          "under-covers";
        Alcotest.(check bool)
          "16-byte unit accepted" true
          (Plan_verify.check_plan (plan 16) = Ok ()));
    test "mach3 reservation covers a sequence of unions end to end"
      (fun () ->
        let mint, sequ, pres = seq_union_case () in
        let enc = Encoding.mach3 in
        let roots =
          [
            Plan_compile.Rvalue
              (Mplan.Rparam { index = 0; name = "v"; deref = false }, sequ, pres);
          ]
        in
        let plan = Plan_compile.compile ~enc ~mint ~named:[] roots in
        (match Plan_verify.check_plan plan with
        | Ok () -> ()
        | Error e ->
            Alcotest.failf "compiler output rejected: %s"
              (Plan_verify.error_to_string e));
        (* 8 elements overran a per-element reservation that forgot the
           discriminator's descriptor word; [Mbuf.contents] then died on
           an out-of-bounds flatten *)
        let v =
          Value.Varray
            (Array.init 8 (fun i ->
                 Value.Vunion
                   {
                     case = 0;
                     discrim = Mint.Cint 0L;
                     payload = Value.Vchar (Char.chr (65 + i));
                   }))
        in
        let encode = Stub_opt.compile_encoder ~enc ~mint ~named:[] roots in
        let buf = Mbuf.create 64 in
        encode buf [| v |];
        let opt_bytes = Bytes.to_string (Mbuf.contents buf) in
        let naive =
          Stub_naive.compile_encoder ~config:Stub_naive.default_config ~enc
            ~mint ~named:[] roots
        in
        let nbuf = Mbuf.create 64 in
        naive nbuf [| v |];
        Alcotest.(check string)
          "optimized bytes match naive"
          (Bytes.to_string (Mbuf.contents nbuf))
          opt_bytes;
        let decode =
          Stub_opt.compile_decoder ~enc ~mint ~named:[]
            [ Stub_opt.Dvalue (sequ, pres) ]
        in
        let out = decode (Mbuf.reader_of_bytes (Bytes.of_string opt_bytes)) in
        Alcotest.(check bool) "roundtrips" true (Value.equal v out.(0)));
  ]

let suite =
  [
    ("passes:fixtures", fixture_tests);
    ("passes:properties", property_tests);
    ("passes:verifier-negative", negative_tests);
    ("passes:loop-scalar-fusion", fusion_tests);
    ("passes:reservation", reservation_tests);
    ("passes:fixpoint", fixpoint_tests);
    ("passes:config", config_tests);
    ("passes:cache-resets", reset_tests);
  ]
