(* Differential coverage for fused forward relaying (Fplan /
   Fplan_compile / Stub_forward) and the gateway built on it.

   For >= 500 random (MINT, PRES) cases per ordered encoding pair:

   1. executing the fused forward plan over an encoded message yields
      destination bytes identical to decode-then-reencode, consumes
      exactly the same number of source bytes, and the plan passes the
      independent forward verifier ({!Plan_verify.check_fplan});
   2. the staged (tier-1) relay agrees byte-for-byte with tier 0;
   3. truncated prefixes and a corrupted byte keep the fused relay and
      the materializing baseline in agreement: both fail
      (Short_buffer / Decode_error) or both produce identical bytes.

   Unit tests drive the gateway end-to-end (fused and forced-fallback
   relaying produce byte-identical client replies) and pin pooled-
   writer balance across a mid-run tier promotion of a relay. *)

let rng = Random.State.make [| 0xf0bead |]
let mut_rng = Random.State.make [| 0x0bf00d |]

(* -- relay outcomes -------------------------------------------------- *)

(* What one relay engine did to one wire image: the destination bytes
   and the number of source bytes consumed, or a typed failure. *)
type outcome = Ok_relay of string * int | Failed

let relay_outcome (fwd : Stub_forward.forward) (wire : bytes) : outcome =
  let r = Mbuf.reader_of_bytes wire in
  let w = Mbuf.acquire () in
  Fun.protect
    ~finally:(fun () -> Mbuf.release w)
    (fun () ->
      match fwd r w with
      | () -> Ok_relay (Bytes.to_string (Mbuf.contents w), Mbuf.remaining r)
      | exception (Mbuf.Short_buffer | Codec.Decode_error _) -> Failed)

let same_outcome a b =
  match (a, b) with
  | Ok_relay (x, rx), Ok_relay (y, ry) -> x = y && rx = ry
  | Failed, Failed -> true
  | Ok_relay _, Failed | Failed, Ok_relay _ -> false

let pp_outcome = function
  | Ok_relay (s, rem) ->
      Printf.sprintf "ok %s (rem %d)" (Test_engines.hex s) rem
  | Failed -> "failed"

let baseline_relay ~src ~dst (c : Test_engines.case) : Stub_forward.forward =
  let mint = c.Test_engines.mint and named = c.Test_engines.named in
  let dec =
    Stub_opt.compile_decoder ~enc:src ~mint ~named (Test_engines.droots_of c)
  in
  let re =
    Stub_opt.compile_encoder ~enc:dst ~mint ~named (Test_engines.roots_of c)
  in
  fun r w -> re w (dec r)

let fused_plan ~src ~dst (c : Test_engines.case) =
  Stub_forward.forward_plan ~src ~dst ~mint:c.Test_engines.mint
    ~named:c.Test_engines.named
    (List.map Stub_opt.to_dplan_droot (Test_engines.droots_of c))
    (Test_engines.roots_of c)

(* -- the differential property per encoding pair --------------------- *)

let forward_prop (src, dst) (c : Test_engines.case) =
  let mint = c.Test_engines.mint and named = c.Test_engines.named in
  let v = Workload.random rng mint ~named c.Test_engines.idx c.Test_engines.pres in
  let wire =
    Bytes.of_string
      (Test_engines.encode_with Test_engines.opt_encoder src c
         (Test_engines.roots_of c) v)
  in
  let plan = fused_plan ~src ~dst c in
  (match Plan_verify.check_fplan plan with
  | Ok () -> ()
  | Error e ->
      QCheck.Test.fail_reportf "verifier rejected fused plan for %s: %s"
        c.Test_engines.label
        (Plan_verify.error_to_string e));
  let base = baseline_relay ~src ~dst c in
  let fused = Stub_forward.forward_of_plan plan in
  let agree what image =
    let b = relay_outcome base image and f = relay_outcome fused image in
    if not (same_outcome b f) then
      QCheck.Test.fail_reportf "%s disagree on %s:@.baseline %s@.fused    %s"
        what c.Test_engines.label (pp_outcome b) (pp_outcome f)
  in
  (* the well-formed message must relay, identically *)
  (match relay_outcome base wire with
  | Failed ->
      QCheck.Test.fail_reportf "baseline failed well-formed input on %s"
        c.Test_engines.label
  | Ok_relay _ -> ());
  agree "relays" wire;
  (* staged tier agrees too *)
  (match Stub_forward.staged_forward_of_plan plan with
  | None -> ()
  | Some staged ->
      let b = relay_outcome base wire and s = relay_outcome staged wire in
      if not (same_outcome b s) then
        QCheck.Test.fail_reportf "staged relay differs on %s:@.%s@.%s"
          c.Test_engines.label (pp_outcome b) (pp_outcome s));
  (* truncation parity *)
  let n = Bytes.length wire in
  if n > 0 then agree "truncations" (Bytes.sub wire 0 (Random.State.int mut_rng n));
  (* corruption parity: flip one bit somewhere *)
  if n > 0 then begin
    let at = Random.State.int mut_rng n in
    let bit = Random.State.int mut_rng 8 in
    let bad = Bytes.copy wire in
    Bytes.set bad at
      (Char.chr (Char.code (Bytes.get bad at) lxor (1 lsl bit)));
    agree "corruptions" bad
  end;
  true

let pair_tests =
  List.concat_map
    (fun src ->
      List.map
        (fun dst ->
          let name =
            Printf.sprintf "forward %s->%s relay/parity" src.Encoding.name
              dst.Encoding.name
          in
          QCheck_alcotest.to_alcotest
            (QCheck.Test.make ~count:500 ~name Test_engines.arbitrary_case
               (forward_prop (src, dst))))
        Encoding.all)
    Encoding.all

(* -- the gateway, end to end ----------------------------------------- *)

let gateway_collect ~forward ~src ~dst ~payload ~bytes ~requests =
  let sim = Sim_core.create () in
  let gw = Rpc_gateway.create ~sim ~forward ~src ~dst () in
  let style =
    match src.Encoding.name with
    | "cdr" -> `Corba
    | "xdr" -> `Rpcgen
    | _ -> `Fluke
  in
  let pc = Paper_fixtures.bench_presc style in
  let ms = Paper_fixtures.request_spec pc ~op:(Paper_fixtures.op_of_payload payload) in
  Rpc_gateway.register gw ms ~iface:1 ~op:1;
  let vals = [| Paper_fixtures.payload payload ~bytes |] in
  let frame = Rpc_gateway.client_frame gw ms ~iface:1 ~op:1 ~seq:0 vals in
  let expect = Bytes.sub frame 16 (Bytes.length frame - 16) in
  let replies = Hashtbl.create 16 in
  let conn =
    Rpc_gateway.connect gw ~deliver:(fun data ->
        List.iter
          (fun (status, seq, pl) -> Hashtbl.replace replies seq (status, pl))
          (Rpc_serve.parse_replies data))
  in
  for seq = 0 to requests - 1 do
    let f = Bytes.copy frame in
    Bytes.set_int32_be f 12 (Int32.of_int seq);
    Sim_core.schedule sim ~delay:(float_of_int seq *. 50e-6) (fun () ->
        Rpc_gateway.send conn f)
  done;
  Sim_core.run sim;
  (replies, expect, Rpc_gateway.stats gw)

let gateway_roundtrip_test () =
  List.iter
    (fun (src, dst) ->
      let requests = 8 in
      let fused, expect, gst =
        gateway_collect ~forward:true ~src ~dst ~payload:`Dirents ~bytes:600
          ~requests
      in
      let fallback, _, _ =
        gateway_collect ~forward:false ~src ~dst ~payload:`Dirents ~bytes:600
          ~requests
      in
      Alcotest.(check int)
        (Printf.sprintf "%s->%s all replies arrive" src.Encoding.name
           dst.Encoding.name)
        requests (Hashtbl.length fused);
      Alcotest.(check int) "relay errors" 0 gst.Rpc_gateway.gs_relay_errors;
      Alcotest.(check int) "nothing pending" 0 gst.Rpc_gateway.gs_pending;
      for seq = 0 to requests - 1 do
        (match Hashtbl.find_opt fused seq with
        | Some (Rpc_serve.Sok, pl) ->
            (* double relay of an echo: the client gets its own payload
               bytes back *)
            if not (Bytes.equal pl expect) then
              Alcotest.failf "%s->%s seq %d: fused reply differs from request"
                src.Encoding.name dst.Encoding.name seq
        | Some _ -> Alcotest.failf "seq %d: not Sok" seq
        | None -> Alcotest.failf "seq %d: no reply" seq);
        match (Hashtbl.find_opt fused seq, Hashtbl.find_opt fallback seq) with
        | Some (_, a), Some (_, b) ->
            if not (Bytes.equal a b) then
              Alcotest.failf "%s->%s seq %d: fused and fallback replies differ"
                src.Encoding.name dst.Encoding.name seq
        | _ -> Alcotest.fail "missing fallback reply"
      done)
    [
      (Encoding.xdr, Encoding.xdr);
      (Encoding.cdr, Encoding.xdr);
      (Encoding.xdr, Encoding.cdr);
      (Encoding.cdr, Encoding.fluke);
    ]

(* -- pool balance across a mid-run promotion ------------------------- *)

let counter name =
  List.fold_left
    (fun acc s ->
      match s with Obs.Scounter (n, v) when n = name -> v | _ -> acc)
    0 (Obs.snapshot ())

let promotion_pool_test () =
  (* threshold 11 is used nowhere else in the suite, so this relay's
     hotness counter starts fresh (the threshold is part of the cache
     key) *)
  Fun.protect ~finally:Opt_config.clear_stage_override @@ fun () ->
  Opt_config.set_stage_enabled true;
  Opt_config.set_stage_threshold 11;
  let p0 = counter "forward.promotions" in
  let before = Mbuf.pool_stats () in
  let requests = 30 in
  let replies, expect, gst =
    gateway_collect ~forward:true ~src:Encoding.cdr ~dst:Encoding.mach3
      ~payload:`Rects ~bytes:512 ~requests
  in
  Alcotest.(check int) "all replies arrive" requests (Hashtbl.length replies);
  Alcotest.(check int) "relay errors" 0 gst.Rpc_gateway.gs_relay_errors;
  Hashtbl.iter
    (fun seq (status, pl) ->
      if status <> Rpc_serve.Sok then Alcotest.failf "seq %d not Sok" seq;
      if not (Bytes.equal pl expect) then
        Alcotest.failf "seq %d: bytes changed across the promotion" seq)
    replies;
  (* the request relay crossed the threshold mid-run *)
  if counter "forward.promotions" <= p0 then
    Alcotest.fail "no forward promotion happened";
  let after = Mbuf.pool_stats () in
  Alcotest.(check int) "pooled writers outstanding unchanged"
    before.Mbuf.writers_outstanding after.Mbuf.writers_outstanding;
  Alcotest.(check int) "pooled readers outstanding unchanged"
    before.Mbuf.readers_outstanding after.Mbuf.readers_outstanding

let suite =
  [
    ( "forward",
      pair_tests
      @ [
          Alcotest.test_case "gateway roundtrip fused vs fallback" `Quick
            gateway_roundtrip_test;
          Alcotest.test_case "pool balance across relay promotion" `Quick
            promotion_pool_test;
        ] );
  ]
