(* Back-end tests: every generated C file must compile with gcc, and
   loopback client/server round trips must actually run.  This is the
   strongest validation that the emitted stubs implement the wire
   contracts they claim. *)

let mail_idl =
  "interface Mail { void send(in string msg); oneway void ping(in long x); };"

let dir_idl =
  "struct stat_info { long fields[30]; char tag[16]; };\n\
   struct dirent { string name; stat_info info; };\n\
   typedef sequence<dirent> dirent_seq;\n\
   exception NotFound { string why; };\n\
   interface Dir { dirent_seq read_dir(in string path) raises (NotFound); \
   long count(in string path, out long total); };"

let calc_x =
  "program Calc { version CalcV { int add(int, int) = 1; int neg(int) = 2; } \
   = 1; } = 200;"

let list_x =
  "struct node { int v; node *next; };\n\
   program ListP { version ListV { node *reverse(node *) = 1; } = 1; } = 300;"

let tmp_root =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "flick-ctest-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  dir

let fresh_dir =
  let n = ref 0 in
  fun name ->
    incr n;
    let d = Filename.concat tmp_root (Printf.sprintf "%s-%d" name !n) in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

let write_file dir name contents =
  let oc = open_out (Filename.concat dir name) in
  output_string oc contents;
  close_out oc

let sh dir cmd =
  Sys.command (Printf.sprintf "cd %s && %s" (Filename.quote dir) cmd)

let compile_check name files =
  let dir = fresh_dir name in
  Runtime.write_to dir;
  List.iter (fun (fname, contents) -> write_file dir fname contents) files;
  List.iter
    (fun (fname, contents) ->
      if Filename.check_suffix fname ".c" then begin
        let rc =
          sh dir
            (Printf.sprintf
               "gcc -std=c99 -Wall -Werror -Wno-unused-variable \
                -Wno-unused-function -Wno-unused-but-set-variable -c %s -o \
                %s.o 2> %s.err"
               fname fname fname)
        in
        if rc <> 0 then begin
          let err =
            let ic = open_in (Filename.concat dir (fname ^ ".err")) in
            let n = in_channel_length ic in
            let s = really_input_string ic n in
            close_in ic;
            s
          in
          Alcotest.failf "gcc failed on %s/%s:\n%s\n--- %s ---\n%s" name fname
            err fname contents
        end
      end)
    files

let run_loopback name files main_src =
  let dir = fresh_dir name in
  Runtime.write_to dir;
  List.iter (fun (fname, contents) -> write_file dir fname contents) files;
  write_file dir "main.c" main_src;
  let c_files =
    String.concat " "
      ("main.c"
      :: List.filter_map
           (fun (f, _) -> if Filename.check_suffix f ".c" then Some f else None)
           files)
  in
  let rc =
    sh dir
      (Printf.sprintf
         "gcc -std=c99 -Wall -Wno-unused-variable -Wno-unused-function \
          -Wno-unused-but-set-variable %s -o loop 2> build.err && ./loop > \
          run.out 2>&1"
         c_files)
  in
  if rc <> 0 then begin
    let slurp f =
      try
        let ic = open_in (Filename.concat dir f) in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
      with Sys_error _ -> "<missing>"
    in
    Alcotest.failf "loopback %s failed (rc %d):\nbuild: %s\nrun: %s" name rc
      (slurp "build.err") (slurp "run.out")
  end

let test name f = Alcotest.test_case name `Quick f

let presentations () =
  let mail = Corba_parser.parse ~file:"mail.idl" mail_idl in
  let dir = Corba_parser.parse ~file:"dir.idl" dir_idl in
  let calc = Onc_parser.parse ~file:"calc.x" calc_x in
  let lst = Onc_parser.parse ~file:"list.x" list_x in
  [
    ("mail-corba", Presgen_corba.generate mail [ "Mail" ]);
    ("dir-corba", Presgen_corba.generate dir [ "Dir" ]);
    ("calc-rpcgen", Presgen_rpcgen.generate calc [ "Calc"; "CalcV" ]);
    ("list-rpcgen", Presgen_rpcgen.generate lst [ "ListP"; "ListV" ]);
    ("mail-fluke", Presgen_fluke.generate mail [ "Mail" ]);
  ]

let backends =
  [
    ("iiop", Be_iiop.generate);
    ("oncrpc", Be_xdr.generate);
    ("mach3", Be_mach.generate);
    ("fluke", Be_fluke.generate);
  ]

let compile_tests =
  List.concat_map
    (fun (pname, pc) ->
      List.map
        (fun (bname, gen) ->
          test
            (Printf.sprintf "gcc compiles %s via %s" pname bname)
            (fun () -> compile_check (pname ^ "-" ^ bname) (gen pc)))
        backends)
    (presentations ())

let mail_main =
  {c|#include <stdio.h>
#include <string.h>
#include "mail.h"

static char received[256];
static int pings;

void Mail_send_impl(Mail _obj, char *msg, flick_env_t *_ev)
{
  (void)_obj; (void)_ev;
  strcpy(received, msg);
}

void Mail_ping_impl(Mail _obj, int32_t x, flick_env_t *_ev)
{
  (void)_obj; (void)_ev;
  pings += x;
}

int main(void)
{
  struct flick_object obj;
  flick_env_t ev;
  obj.dispatch = Mail_dispatch;
  obj.impl_state = &obj;
  obj.key = "mail-object";
  flick_env_clear(&ev);
  Mail_send(&obj, "hello through GIOP", &ev);
  if (strcmp(received, "hello through GIOP") != 0) return 1;
  Mail_ping(&obj, 21, &ev);
  Mail_ping(&obj, 21, &ev);
  if (pings != 42) return 2;
  printf("mail ok\n");
  return 0;
}
|c}

let calc_main =
  {c|#include <stdio.h>
#include "calc_calcv.h"

int32_t add_1_svc(int32_t a, int32_t b, flick_svc_req_t *rq)
{
  (void)rq;
  return a + b;
}

int32_t neg_1_svc(int32_t a, flick_svc_req_t *rq)
{
  (void)rq;
  return -a;
}

int main(void)
{
  flick_client_t clnt;
  clnt.dispatch = Calc_CalcV_dispatch;
  clnt.impl_state = 0;
  clnt.key = "calc";
  if (add_1(20, 22, &clnt) != 42) return 1;
  if (neg_1(7, &clnt) != -7) return 2;
  printf("calc ok\n");
  return 0;
}
|c}

let dir_main =
  {c|#include <stdio.h>
#include <string.h>
#include "dir.h"

static NotFound not_found;

dirent_seq *Dir_read_dir_impl(Dir _obj, char *path, flick_env_t *_ev)
{
  static dirent_seq seq;
  static dirent entries[2];
  int i, k;
  (void)_obj;
  if (strcmp(path, "/missing") == 0) {
    not_found.why = "no such directory";
    flick_env_raise(_ev, "NotFound", &not_found);
    return 0;
  }
  for (i = 0; i < 2; i++) {
    entries[i].name = i == 0 ? "alpha" : "beta";
    for (k = 0; k < 30; k++) entries[i].info.fields[k] = i * 100 + k;
    memset(entries[i].info.tag, 'A' + i, 16);
  }
  seq._length = 2;
  seq._buffer = entries;
  return &seq;
}

int32_t Dir_count_impl(Dir _obj, char *path, int32_t *total, flick_env_t *_ev)
{
  (void)_obj; (void)_ev; (void)path;
  *total = 99;
  return 7;
}

int main(void)
{
  struct flick_object obj;
  flick_env_t ev;
  dirent_seq *res;
  int32_t total = 0;
  obj.dispatch = Dir_dispatch;
  obj.impl_state = &obj;
  obj.key = "dir-object";
  flick_env_clear(&ev);
  res = Dir_read_dir(&obj, "/home", &ev);
  if (ev._major) return 1;
  if (res->_length != 2) return 2;
  if (strcmp(res->_buffer[0].name, "alpha") != 0) return 3;
  if (res->_buffer[1].info.fields[3] != 103) return 4;
  if (res->_buffer[1].info.tag[0] != 'B') return 5;
  if (Dir_count(&obj, "/x", &total, &ev) != 7) return 6;
  if (total != 99) return 7;
  res = Dir_read_dir(&obj, "/missing", &ev);
  if (!ev._major) return 8;
  if (strcmp(ev.exc_name, "NotFound") != 0) return 9;
  if (strcmp(((NotFound *)ev.exc_value)->why, "no such directory") != 0)
    return 10;
  printf("dir ok\n");
  return 0;
}
|c}

let list_main =
  {c|#include <stdio.h>
#include "listp_listv.h"

/* reverse a linked list: exercises the per-type marshal functions
   generated for recursive (self-referential) XDR types */
node *reverse_1_svc(node *head, flick_svc_req_t *rq)
{
  node *rev = 0;
  (void)rq;
  while (head) {
    node *next = head->next;
    head->next = rev;
    rev = head;
    head = next;
  }
  return rev;
}

int main(void)
{
  flick_client_t clnt;
  node n3 = { 3, 0 }, n2 = { 2, &n3 }, n1 = { 1, &n2 };
  node *r;
  clnt.dispatch = ListP_ListV_dispatch;
  clnt.impl_state = 0;
  clnt.key = "list";
  r = reverse_1(&n1, &clnt);
  if (!r || r->v != 3) return 1;
  if (!r->next || r->next->v != 2) return 2;
  if (!r->next->next || r->next->next->v != 1) return 3;
  if (r->next->next->next != 0) return 4;
  printf("list ok\n");
  return 0;
}
|c}

let loopback_tests =
  [
    test "loopback: Mail over IIOP round trips" (fun () ->
        let pc = List.assoc "mail-corba" (presentations ()) in
        run_loopback "mail-iiop" (Be_iiop.generate pc) mail_main);
    test "loopback: Mail over Mach3 round trips" (fun () ->
        let pc = List.assoc "mail-corba" (presentations ()) in
        run_loopback "mail-mach3" (Be_mach.generate pc) mail_main);
    test "loopback: Calc over ONC RPC round trips" (fun () ->
        let pc = List.assoc "calc-rpcgen" (presentations ()) in
        run_loopback "calc-oncrpc" (Be_xdr.generate pc) calc_main);
    test "loopback: Calc over Fluke IPC round trips" (fun () ->
        let pc = List.assoc "calc-rpcgen" (presentations ()) in
        run_loopback "calc-fluke" (Be_fluke.generate pc) calc_main);
    test "loopback: Dir with out params and exceptions over IIOP" (fun () ->
        let pc = List.assoc "dir-corba" (presentations ()) in
        run_loopback "dir-iiop" (Be_iiop.generate pc) dir_main);
    test "loopback: recursive linked list over ONC RPC" (fun () ->
        let pc = List.assoc "list-rpcgen" (presentations ()) in
        run_loopback "list-oncrpc" (Be_xdr.generate pc) list_main);
  ]

let suite =
  [ ("backend:compile", compile_tests); ("backend:loopback", loopback_tests) ]
