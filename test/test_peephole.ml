(* The peephole optimizer and the compiled-plan cache.

   Two layers of defense:
   - structural tests pin each rewrite (chunk coalescing, loop fusion,
     ensure hoisting, dead-op removal) on hand-built plans;
   - differential qcheck properties prove the whole pass byte-preserving
     against the naive engine on >= 1000 random (type, value) cases per
     encoding, for both the default and the per-datum plan shapes. *)

let test name f = Alcotest.test_case name `Quick f
let rv0 name = Mplan.Rparam { index = 0; name; deref = false }

let seq_via = Mplan.Via_seq { len_field = "len"; buf_field = "val" }

let pp_ops ops = Format.asprintf "%a" Mplan.pp ops

let check_ops msg expected actual =
  Alcotest.(check string) msg (pp_ops expected) (pp_ops actual)

(* -- structural: each rewrite on a hand-built plan -------------------- *)

let atom32 = { Mplan.kind = Encoding.Kint { bits = 32; signed = true }; size = 4; align = 4 }
let atom8 = { Mplan.kind = Encoding.Kchar; size = 1; align = 1 }

let it_atom off src = Mplan.It_atom { off; atom = atom32; src }

let structural_tests =
  [
    test "adjacent chunks coalesce: offsets shift, one check survives"
      (fun () ->
        let st = Peephole.fresh_stats () in
        let out =
          Peephole.optimize ~stats:st
            [
              Mplan.Chunk
                { size = 8; align = 4; items = [ it_atom 0 (rv0 "a"); it_atom 4 (rv0 "b") ]; check = true };
              Mplan.Chunk
                { size = 4; align = 4; items = [ it_atom 0 (rv0 "c") ]; check = false };
            ]
        in
        check_ops "merged"
          [
            Mplan.Chunk
              {
                size = 12;
                align = 4;
                items = [ it_atom 0 (rv0 "a"); it_atom 4 (rv0 "b"); it_atom 8 (rv0 "c") ];
                check = true;
              };
          ]
          out;
        Alcotest.(check int) "one merge recorded" 1 st.Peephole.chunks_merged);
    test "a run of chunks collapses to one (recovers chunking across struct \
          boundaries)" (fun () ->
        let chunks =
          List.init 10 (fun i ->
              Mplan.Chunk
                { size = 4; align = 4; items = [ it_atom 0 (rv0 (Printf.sprintf "f%d" i)) ]; check = true })
        in
        match Peephole.optimize chunks with
        | [ Mplan.Chunk { size = 40; items; check = true; _ } ] ->
            Alcotest.(check int) "items" 10 (List.length items)
        | ops -> Alcotest.failf "expected one 40-byte chunk, got:@.%s" (pp_ops ops));
    test "no-op and doubled alignments disappear" (fun () ->
        let out =
          Peephole.optimize
            [ Mplan.Align 1; Mplan.Align 4; Mplan.Align 8; Mplan.Align 2 ]
        in
        check_ops "one align" [ Mplan.Align 8 ] out);
    test "gapless one-atom loops fuse into Put_atom_array" (fun () ->
        let st = Peephole.fresh_stats () in
        let out =
          Peephole.optimize ~stats:st
            [
              Mplan.Loop
                {
                  arr = rv0 "xs";
                  via = seq_via;
                  var = 0;
                  body =
                    [
                      Mplan.Chunk
                        { size = 4; align = 4; items = [ it_atom 0 (Mplan.Rvar 0) ]; check = true };
                    ];
                };
            ]
        in
        check_ops "fused"
          [ Mplan.Put_atom_array { arr = rv0 "xs"; via = seq_via; atom = atom32; with_len = false } ]
          out;
        Alcotest.(check int) "one fusion recorded" 1 st.Peephole.loops_fused);
    test "fusion drops the now-redundant Ensure_count" (fun () ->
        let out =
          Peephole.optimize
            [
              Mplan.Ensure_count { arr = rv0 "xs"; via = seq_via; unit_size = 4 };
              Mplan.Loop
                {
                  arr = rv0 "xs";
                  via = seq_via;
                  var = 0;
                  body =
                    [
                      Mplan.Chunk
                        { size = 4; align = 4; items = [ it_atom 0 (Mplan.Rvar 0) ]; check = false };
                    ];
                };
            ]
        in
        check_ops "one op"
          [ Mplan.Put_atom_array { arr = rv0 "xs"; via = seq_via; atom = atom32; with_len = false } ]
          out);
    test "optional loops are not fused (Put_atom_array cannot walk \
          optionals)" (fun () ->
        let loop =
          Mplan.Loop
            {
              arr = rv0 "o";
              via = Mplan.Via_opt;
              var = 0;
              body =
                [
                  Mplan.Chunk
                    { size = 4; align = 4; items = [ it_atom 0 (Mplan.Rvar 0) ]; check = true };
                ];
            }
        in
        match Peephole.optimize [ loop ] with
        | [ Mplan.Loop _ ] -> ()
        | ops -> Alcotest.failf "expected the loop untouched, got:@.%s" (pp_ops ops));
    test "bounded loop bodies get one hoisted reservation" (fun () ->
        let st = Peephole.fresh_stats () in
        let body =
          [
            Mplan.Chunk { size = 4; align = 4; items = [ it_atom 0 (Mplan.Rvar 0) ]; check = true };
            Mplan.Put_const_str { s = "tag"; nul = false; pad = 1 };
            Mplan.Chunk
              {
                size = 2;
                align = 1;
                items =
                  [ Mplan.It_atom { off = 0; atom = atom8; src = Mplan.Rvar 0 };
                    Mplan.It_atom { off = 1; atom = atom8; src = Mplan.Rvar 0 } ];
                check = true;
              };
          ]
        in
        let out =
          Peephole.optimize ~stats:st
            [ Mplan.Loop { arr = rv0 "xs"; via = seq_via; var = 0; body } ]
        in
        (match out with
        | [
         Mplan.Ensure_count { unit_size; _ };
         Mplan.Loop { body = [ Mplan.Chunk { check = false; _ }; Mplan.Put_const_str _; Mplan.Chunk { check = false; _ } ]; _ };
        ] ->
            (* 4 (chunk) + 4+3+1 (const str) + 2 (chunk) *)
            Alcotest.(check int) "unit" 14 unit_size
        | ops -> Alcotest.failf "expected hoisted ensure, got:@.%s" (pp_ops ops));
        Alcotest.(check int) "one hoist recorded" 1 st.Peephole.ensures_hoisted);
    test "loops with dynamic-size bodies are left alone" (fun () ->
        let body =
          [
            Mplan.Put_string
              { src = Mplan.Rvar 0; nul = false; pad = 4; len_src = None;
                borrow = false };
            Mplan.Chunk { size = 4; align = 4; items = [ it_atom 0 (Mplan.Rvar 0) ]; check = true };
          ]
        in
        match
          Peephole.optimize [ Mplan.Loop { arr = rv0 "xs"; via = seq_via; var = 0; body } ]
        with
        | [ Mplan.Loop { body = [ Mplan.Put_string _; Mplan.Chunk { check = true; _ } ]; _ } ] -> ()
        | ops -> Alcotest.failf "expected no hoist, got:@.%s" (pp_ops ops));
    test "rewrites reach switch arms and nested loops" (fun () ->
        let arm_body =
          [
            Mplan.Chunk { size = 4; align = 4; items = [ it_atom 0 (rv0 "u") ]; check = true };
            Mplan.Chunk { size = 4; align = 4; items = [ it_atom 0 (rv0 "v") ]; check = true };
          ]
        in
        let sw =
          Mplan.Switch
            {
              u = rv0 "u";
              discrim_atom = Some atom32;
              arms = [ { Mplan.a_const = Mint.Cint 0L; a_case = 0; a_member = "a"; a_body = arm_body } ];
              default = None;
              union_field = "_u";
              discrim_field = "_d";
            }
        in
        match Peephole.optimize [ sw ] with
        | [ Mplan.Switch { arms = [ { Mplan.a_body = [ Mplan.Chunk { size = 8; _ } ]; _ } ]; _ } ] -> ()
        | ops -> Alcotest.failf "expected merged arm body, got:@.%s" (pp_ops ops));
    test "optimize is idempotent on the per-datum directory plan" (fun () ->
        let pc = Paper_fixtures.bench_presc `Rpcgen in
        let spec = Paper_fixtures.request_spec pc ~op:"send_dirents" in
        let plan =
          Plan_compile.compile ~enc:Encoding.xdr ~mint:spec.Paper_fixtures.ms_mint
            ~named:spec.Paper_fixtures.ms_named ~chunked:false
            spec.Paper_fixtures.ms_roots
        in
        let once = Peephole.optimize_plan plan in
        let twice = Peephole.optimize_plan once in
        check_ops "fixpoint" once.Plan_compile.p_ops twice.Plan_compile.p_ops);
    test "peephole recovers chunking on the per-datum directory plan"
      (fun () ->
        let pc = Paper_fixtures.bench_presc `Rpcgen in
        let spec = Paper_fixtures.request_spec pc ~op:"send_dirents" in
        let compile chunked =
          Plan_compile.compile ~enc:Encoding.xdr ~mint:spec.Paper_fixtures.ms_mint
            ~named:spec.Paper_fixtures.ms_named ~chunked
            spec.Paper_fixtures.ms_roots
        in
        let per_datum = compile false in
        let optimized = Peephole.optimize_plan per_datum in
        let count p = Mplan.count_ops p.Plan_compile.p_ops in
        if count optimized >= count per_datum then
          Alcotest.failf "no reduction: %d -> %d" (count per_datum) (count optimized);
        (* the optimized per-datum plan must match the chunked plan's size:
           the peephole pass recovers what the compiler was told not to do *)
        let chunked = compile true in
        Alcotest.(check int)
          "matches the optimizing compiler's own node count" (count chunked)
          (count optimized));
  ]

(* -- goldens: the optimizer's decisions as reviewable diffs ----------- *)

let read_golden name =
  let path = Filename.concat "goldens" name in
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let golden_check name rendered =
  Alcotest.(check string) name (String.trim (read_golden name)) (String.trim rendered)

let mail_request_plan ~enc ~chunked =
  let spec = Corba_parser.parse ~file:"mail.idl" Paper_fixtures.mail_corba in
  let pc = Presgen_corba.generate spec [ "Mail" ] in
  let ms = Paper_fixtures.request_spec pc ~op:"send" in
  Plan_compile.compile ~enc ~mint:ms.Paper_fixtures.ms_mint
    ~named:ms.Paper_fixtures.ms_named ~chunked ms.Paper_fixtures.ms_roots

let dirents_request_plan ~enc ~chunked =
  let pc = Paper_fixtures.bench_presc `Rpcgen in
  let spec = Paper_fixtures.request_spec pc ~op:"send_dirents" in
  Plan_compile.compile ~enc ~mint:spec.Paper_fixtures.ms_mint
    ~named:spec.Paper_fixtures.ms_named ~chunked spec.Paper_fixtures.ms_roots

let golden_tests =
  [
    test "golden: Mail request plan before/after peephole (mach3)" (fun () ->
        let plan = mail_request_plan ~enc:Encoding.mach3 ~chunked:false in
        golden_check "mail_mach3_before.golden" (pp_ops plan.Plan_compile.p_ops);
        let opt = Peephole.optimize_plan plan in
        golden_check "mail_mach3_after.golden" (pp_ops opt.Plan_compile.p_ops));
    test "golden: Mail request plan is already optimal under CDR" (fun () ->
        let plan = mail_request_plan ~enc:Encoding.cdr ~chunked:true in
        golden_check "mail_cdr_before.golden" (pp_ops plan.Plan_compile.p_ops);
        let opt = Peephole.optimize_plan plan in
        (* conservatism: nothing to rewrite, nothing rewritten *)
        golden_check "mail_cdr_before.golden" (pp_ops opt.Plan_compile.p_ops));
    test "golden: per-datum directory plan before/after peephole (xdr)"
      (fun () ->
        let plan = dirents_request_plan ~enc:Encoding.xdr ~chunked:false in
        golden_check "dirents_xdr_per_datum_before.golden"
          (pp_ops plan.Plan_compile.p_ops);
        let opt = Peephole.optimize_plan plan in
        golden_check "dirents_xdr_per_datum_after.golden"
          (pp_ops opt.Plan_compile.p_ops));
  ]

(* -- differential properties ------------------------------------------ *)

let rng = Random.State.make [| 0xbeef |]

let encode_plan ~enc plan v =
  let encoder = Stub_opt.encoder_of_plan ~enc plan in
  let buf = Mbuf.create 64 in
  encoder buf [| v |];
  Bytes.to_string (Mbuf.contents buf)

(* For one random (type, value): the peephole-optimized plan, the raw
   plan, the per-datum plan and its optimization, the cached engine
   encoder, and the naive engine must all produce identical bytes. *)
let byte_identity_prop enc (c : Test_engines.case) =
  let v =
    Workload.random rng c.Test_engines.mint ~named:c.Test_engines.named
      c.Test_engines.idx c.Test_engines.pres
  in
  let roots = Test_engines.roots_of c in
  let mint = c.Test_engines.mint and named = c.Test_engines.named in
  let raw = Plan_compile.compile ~enc ~mint ~named roots in
  let per_datum = Plan_compile.compile ~enc ~mint ~named ~chunked:false roots in
  let reference = encode_plan ~enc raw v in
  let candidates =
    [
      ("peephole", encode_plan ~enc (Peephole.optimize_plan raw) v);
      ("per-datum", encode_plan ~enc per_datum v);
      ("peephole per-datum", encode_plan ~enc (Peephole.optimize_plan per_datum) v);
      ( "cached engine",
        Test_engines.encode_with Test_engines.opt_encoder enc c roots v );
      ( "naive engine",
        Test_engines.encode_with
          (Stub_naive.compile_encoder ~config:Stub_naive.default_config)
          enc c roots v );
    ]
  in
  List.iter
    (fun (what, bytes) ->
      if bytes <> reference then
        QCheck.Test.fail_reportf "%s bytes differ on %s:@.%s@.%s" what
          c.Test_engines.label
          (Test_engines.hex reference) (Test_engines.hex bytes))
    candidates;
  true

let qtest ~count name prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count ~name Test_engines.arbitrary_case prop)

let differential_tests =
  List.map
    (fun enc ->
      let n = enc.Encoding.name in
      (* the acceptance bar: >= 1000 cases on the two paper encodings *)
      let count = if n = "xdr" || n = "cdr" then 1000 else 400 in
      qtest ~count
        (Printf.sprintf "%s: peephole + cache byte-identical (%d cases)" n count)
        (byte_identity_prop enc))
    Encoding.all

(* -- the plan/encoder/decoder caches ---------------------------------- *)

let dir_spec () =
  let pc = Paper_fixtures.bench_presc `Rpcgen in
  Paper_fixtures.request_spec pc ~op:"send_dirents"

let cache_tests =
  [
    test "repeated compilation returns the same plan object" (fun () ->
        let spec = dir_spec () in
        let get () =
          Plan_cache.plan ~enc:Encoding.xdr ~mint:spec.Paper_fixtures.ms_mint
            ~named:spec.Paper_fixtures.ms_named spec.Paper_fixtures.ms_roots
        in
        Alcotest.(check bool) "physically equal" true (get () == get ()));
    test "encoder and decoder closures are reused on repeat compilation"
      (fun () ->
        let spec = dir_spec () in
        let enc () =
          Stub_opt.compile_encoder ~enc:Encoding.xdr
            ~mint:spec.Paper_fixtures.ms_mint ~named:spec.Paper_fixtures.ms_named
            spec.Paper_fixtures.ms_roots
        in
        let dec () =
          Stub_opt.compile_decoder ~enc:Encoding.xdr
            ~mint:spec.Paper_fixtures.ms_mint ~named:spec.Paper_fixtures.ms_named
            spec.Paper_fixtures.ms_droots
        in
        Alcotest.(check bool) "encoder reused" true (enc () == enc ());
        Alcotest.(check bool) "decoder reused" true (dec () == dec ()));
    test "hit rate exceeds 90% on a repeated compilation workload" (fun () ->
        Plan_cache.reset_all ();
        let pc_r = Paper_fixtures.bench_presc `Rpcgen in
        let pc_c = Paper_fixtures.bench_presc `Corba in
        for _round = 1 to 20 do
          List.iter
            (fun op ->
              List.iter
                (fun (pc, enc) ->
                  let spec = Paper_fixtures.request_spec pc ~op in
                  ignore
                    (Stub_opt.compile_encoder ~enc
                       ~mint:spec.Paper_fixtures.ms_mint
                       ~named:spec.Paper_fixtures.ms_named
                       spec.Paper_fixtures.ms_roots
                      : Stub_opt.encoder);
                  ignore
                    (Stub_opt.compile_decoder ~enc
                       ~mint:spec.Paper_fixtures.ms_mint
                       ~named:spec.Paper_fixtures.ms_named
                       spec.Paper_fixtures.ms_droots
                      : Stub_opt.decoder))
                [ (pc_r, Encoding.xdr); (pc_c, Encoding.cdr) ])
            [ "send_ints"; "send_rects"; "send_dirents" ]
        done;
        let hits, misses =
          List.fold_left
            (fun (h, m) (_, st) ->
              (h + st.Plan_cache.hits, m + st.Plan_cache.misses))
            (0, 0) (Plan_cache.all_stats ())
        in
        let rate = float_of_int hits /. float_of_int (hits + misses) in
        if rate < 0.9 then
          Alcotest.failf "hit rate %.2f (hits %d, misses %d)" rate hits misses);
    test "structurally different messages never alias one cache entry"
      (fun () ->
        let m = Mint.create () in
        let a = Mint.struct_ m [ ("x", Mint.int32 m); ("y", Mint.int32 m) ] in
        let b = Mint.struct_ m [ ("x", Mint.int32 m); ("y", Mint.char8 m) ] in
        let pres = Pres.Struct [ ("x", Pres.Direct); ("y", Pres.Direct) ] in
        let enc_for idx =
          Stub_opt.compile_encoder ~enc:Encoding.cdr ~mint:m ~named:[]
            [ Plan_compile.Rvalue (rv0 "v", idx, pres) ]
        in
        let ea = enc_for a and eb = enc_for b in
        Alcotest.(check bool) "distinct encoders" false (ea == eb);
        let run e v =
          let buf = Mbuf.create 32 in
          e buf [| v |];
          Bytes.to_string (Mbuf.contents buf)
        in
        Alcotest.(check int) "int/int layout" 8
          (String.length (run ea (Value.Vstruct [| Value.Vint 1; Value.Vint 2 |])));
        Alcotest.(check int) "int/char layout" 5
          (String.length (run eb (Value.Vstruct [| Value.Vint 1; Value.Vchar 'c' |]))));
    test "cyclic types fingerprint without diverging" (fun () ->
        let m = Mint.create () in
        let node = Mint.reserve m in
        let next = Mint.array m ~elem:node ~min_len:0 ~max_len:(Some 1) in
        Mint.set m node (Mint.Struct [ ("v", Mint.int32 m); ("next", next) ]);
        let pres =
          Pres.Struct [ ("v", Pres.Direct); ("next", Pres.Opt_ptr (Pres.Ref "node")) ]
        in
        let named = [ ("node", (node, pres)) ] in
        let get () =
          Stub_opt.compile_encoder ~enc:Encoding.xdr ~mint:m ~named
            [ Plan_compile.Rvalue (rv0 "n", node, Pres.Ref "node") ]
        in
        Alcotest.(check bool) "cached" true (get () == get ()));
  ]

let suite =
  [
    ("peephole:structural", structural_tests);
    ("peephole:goldens", golden_tests);
    ("peephole:differential", differential_tests);
    ("peephole:cache", cache_tests);
  ]
