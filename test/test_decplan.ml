(* Differential pinning of the plan-driven decoder (Dplan_compile +
   Stub_opt.decoder_of_dplan) against the three reference decode paths:
   the closure-tree baseline it replaced (Stub_opt.build_decoder), the
   rpcgen-style engine (Stub_naive), and the interpretive engine
   (Stub_interp).

   For >= 1000 random (MINT, PRES) cases per paper encoding:

   1. all four decoders recover the encoded value (Value.equal, which
      also equates a zero-copy view with its copied form);
   2. truncated prefixes behave identically in the plan and closure
      paths: both fail, or both succeed on the same value (a merged
      chunk check may surface Short_buffer *earlier* than the
      per-datum path, but never changes the outcome);
   3. a corrupted byte (malformed union discriminators, bad booleans,
      oversized counts, ...) keeps the two paths in agreement:
      fail together or decode the same value;
   4. with scatter-gather views on and the borrow threshold dropped to
      3 bytes, the view decode equals the copy decode, and
      materializing it yields an owned value that still compares equal.

   Unit tests below pin the specifics: Short_buffer injection mid-chunk,
   an unknown discriminator on a default-less union, the wire offset in
   the Opt_ptr error, zero-copy accounting on a large payload, and the
   decoder/plan cache hit rates on warm compilations. *)

let rng = Random.State.make [| 0xdec0de |]

let naive_config = Stub_naive.default_config

let encode enc (c : Test_engines.case) v =
  Test_engines.encode_with Test_engines.opt_encoder enc c
    (Test_engines.roots_of c) v

let decoders enc (c : Test_engines.case) =
  let droots = Test_engines.droots_of c in
  ( Stub_opt.compile_decoder ~enc ~mint:c.Test_engines.mint
      ~named:c.Test_engines.named droots,
    Stub_opt.build_decoder ~enc ~mint:c.Test_engines.mint
      ~named:c.Test_engines.named droots,
    Stub_naive.compile_decoder ~config:naive_config ~enc
      ~mint:c.Test_engines.mint ~named:c.Test_engines.named droots,
    Stub_interp.compile_decoder ~enc ~mint:c.Test_engines.mint
      ~named:c.Test_engines.named droots )

type outcome = Ok_value of Value.t | Failed

let run_decoder (d : Stub_opt.decoder) (wire : bytes) : outcome =
  match d (Mbuf.reader_of_bytes wire) with
  | [| v |] -> Ok_value v
  | _ -> Failed
  | exception (Mbuf.Short_buffer | Codec.Decode_error _) -> Failed

let same_outcome a b =
  match (a, b) with
  | Ok_value x, Ok_value y -> Value.equal x y
  | Failed, Failed -> true
  | Ok_value _, Failed | Failed, Ok_value _ -> false

let pp_outcome fmt = function
  | Ok_value v -> Format.fprintf fmt "ok %a" Value.pp v
  | Failed -> Format.pp_print_string fmt "failed"

let decode_prop enc (c : Test_engines.case) =
  let v =
    Workload.random rng c.Test_engines.mint ~named:c.Test_engines.named
      c.Test_engines.idx c.Test_engines.pres
  in
  let wire = Bytes.of_string (encode enc c v) in
  let dec_plan, dec_closure, dec_naive, dec_interp = decoders enc c in
  (* 1. four-way agreement on well-formed input *)
  let v_plan =
    match run_decoder dec_plan wire with
    | Ok_value v' -> v'
    | Failed ->
        QCheck.Test.fail_reportf "plan decode failed on %s"
          c.Test_engines.label
  in
  if not (Value.equal v_plan v) then
    QCheck.Test.fail_reportf "plan decode mismatch on %s:@.%a@.%a"
      c.Test_engines.label Value.pp v Value.pp v_plan;
  List.iter
    (fun (name, d) ->
      match run_decoder d wire with
      | Ok_value v' when Value.equal v' v_plan -> ()
      | out ->
          QCheck.Test.fail_reportf "plan/%s decode disagree on %s: %a"
            name c.Test_engines.label pp_outcome out)
    [ ("closure", dec_closure); ("naive", dec_naive); ("interp", dec_interp) ];
  (* 2. truncation parity between the plan and closure paths *)
  let n = Bytes.length wire in
  List.iter
    (fun cut ->
      if cut >= 0 && cut < n then begin
        let prefix = Bytes.sub wire 0 cut in
        let a = run_decoder dec_plan prefix
        and b = run_decoder dec_closure prefix in
        if not (same_outcome a b) then
          QCheck.Test.fail_reportf
            "truncation at %d/%d disagrees on %s: plan %a, closure %a" cut n
            c.Test_engines.label pp_outcome a pp_outcome b
      end)
    [ n - 1; n / 2; n - 3 ];
  (* 3. corruption parity (hits union discriminators, bools, counts) *)
  if n > 0 then begin
    let corrupt = Bytes.copy wire in
    let at = Random.State.int rng n in
    Bytes.set corrupt at
      (Char.chr (Char.code (Bytes.get corrupt at) lxor (1 lsl Random.State.int rng 8)));
    let a = run_decoder dec_plan corrupt
    and b = run_decoder dec_closure corrupt in
    if not (same_outcome a b) then
      QCheck.Test.fail_reportf
        "corrupt byte %d disagrees on %s: plan %a, closure %a" at
        c.Test_engines.label pp_outcome a pp_outcome b
  end;
  (* 4. zero-copy views equal the copy decode, before and after
        materialization *)
  Test_sgwire.with_sg ~on:true ~threshold:3 (fun () ->
      let dec_view =
        Stub_opt.compile_decoder ~enc ~mint:c.Test_engines.mint
          ~named:c.Test_engines.named ~views:true (Test_engines.droots_of c)
      in
      match run_decoder dec_view wire with
      | Failed ->
          QCheck.Test.fail_reportf "view decode failed on %s"
            c.Test_engines.label
      | Ok_value vv ->
          if not (Value.equal vv v_plan) then
            QCheck.Test.fail_reportf "view/copy decode mismatch on %s:@.%a@.%a"
              c.Test_engines.label Value.pp v_plan Value.pp vv;
          if not (Value.equal (Value.materialize vv) v_plan) then
            QCheck.Test.fail_reportf "materialized view mismatch on %s"
              c.Test_engines.label);
  true

let qtest enc =
  let name = enc.Encoding.name ^ ": plan decode = closure = naive = interp" in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:1000 ~name Test_engines.arbitrary_case
       (decode_prop enc))

let property_tests =
  List.map qtest
    [
      Encoding.xdr; Encoding.cdr; Encoding.mach3;
      (* the value-dependent formats run the same 1000-case
         differential: variable headers must truncate and corrupt with
         the same typed failures as the fixed layouts *)
      Encoding.msgpack; Encoding.cbor;
    ]

(* -- targeted failure injection --------------------------------------- *)

let int4_struct () =
  let mint = Mint.create () in
  let i32 = Mint.int32 mint in
  let idx =
    Mint.struct_ mint [ ("a", i32); ("b", i32); ("c", i32); ("d", i32) ]
  in
  let pres =
    Pres.Struct
      [ ("a", Pres.Direct); ("b", Pres.Direct); ("c", Pres.Direct);
        ("d", Pres.Direct) ]
  in
  (mint, idx, pres)

let failure_tests =
  [
    Alcotest.test_case "Short_buffer mid-chunk: plan and closure both fail"
      `Quick (fun () ->
        (* four int32 fields compile to ONE chunk with one 16-byte
           check; cutting at byte 6 lands inside it *)
        let mint, idx, pres = int4_struct () in
        let enc = Encoding.xdr in
        let buf = Mbuf.create 32 in
        for i = 1 to 4 do
          Mbuf.put_i32 buf ~be:true (i * 7)
        done;
        let wire = Bytes.sub (Mbuf.contents buf) 0 6 in
        let droots = [ Stub_opt.Dvalue (idx, pres) ] in
        let dec_plan = Stub_opt.compile_decoder ~enc ~mint ~named:[] droots in
        let dec_closure = Stub_opt.build_decoder ~enc ~mint ~named:[] droots in
        (match dec_plan (Mbuf.reader_of_bytes wire) with
        | _ -> Alcotest.fail "plan decoded a truncated chunk"
        | exception Mbuf.Short_buffer -> ());
        match dec_closure (Mbuf.reader_of_bytes wire) with
        | _ -> Alcotest.fail "closure decoded a truncated chunk"
        | exception Mbuf.Short_buffer -> ());
    Alcotest.test_case "unknown union discriminator is rejected by both paths"
      `Quick (fun () ->
        let mint = Mint.create () in
        let discrim = Mint.int32 mint in
        let idx =
          Mint.union mint ~discrim
            ~cases:
              [
                { Mint.c_const = Mint.Cint 0L; c_body = Mint.int32 mint };
                { Mint.c_const = Mint.Cint 1L; c_body = Mint.bool_ mint };
              ]
            ~default:None
        in
        let pres =
          Pres.Union
            {
              discrim_field = "_d";
              union_field = "_u";
              arms = [ ("a0", Pres.Direct); ("a1", Pres.Direct) ];
              default_arm = None;
            }
        in
        let enc = Encoding.xdr in
        let buf = Mbuf.create 16 in
        Mbuf.put_i32 buf ~be:true 999 (* no such arm *);
        Mbuf.put_i32 buf ~be:true 42;
        let wire = Mbuf.contents buf in
        let droots = [ Stub_opt.Dvalue (idx, pres) ] in
        List.iter
          (fun (name, d) ->
            match d (Mbuf.reader_of_bytes wire) with
            | (_ : Value.t array) ->
                Alcotest.fail (name ^ " accepted an unknown discriminator")
            | exception Codec.Decode_error _ -> ())
          [
            ("plan", Stub_opt.compile_decoder ~enc ~mint ~named:[] droots);
            ("closure", Stub_opt.build_decoder ~enc ~mint ~named:[] droots);
            ("naive", Stub_naive.compile_decoder ~config:naive_config ~enc ~mint ~named:[] droots);
          ]);
    Alcotest.test_case "Opt_ptr error carries the wire offset" `Quick
      (fun () ->
        (* an int32 ahead of the optional puts its count word at byte 4 *)
        let mint = Mint.create () in
        let i32 = Mint.int32 mint in
        let opt =
          Mint.array mint ~elem:i32 ~min_len:0 ~max_len:(Some 1)
        in
        let enc = Encoding.xdr in
        let buf = Mbuf.create 16 in
        Mbuf.put_i32 buf ~be:true 5;
        Mbuf.put_i32 buf ~be:true 2 (* invalid count *);
        let wire = Mbuf.contents buf in
        let droots =
          [
            Stub_opt.Dvalue (i32, Pres.Direct);
            Stub_opt.Dvalue (opt, Pres.Opt_ptr Pres.Direct);
          ]
        in
        let expect_offset name d =
          match d (Mbuf.reader_of_bytes wire) with
          | (_ : Value.t array) ->
              Alcotest.fail (name ^ " accepted an invalid optional count")
          | exception Codec.Decode_error msg ->
              Alcotest.(check string)
                (name ^ " message")
                "optional count 2 at byte 4" msg
        in
        expect_offset "plan"
          (Stub_opt.compile_decoder ~enc ~mint ~named:[] droots);
        expect_offset "closure"
          (Stub_opt.build_decoder ~enc ~mint ~named:[] droots);
        expect_offset "naive"
          (Stub_naive.compile_decoder ~config:naive_config ~enc ~mint
             ~named:[] droots));
  ]

(* -- zero-copy accounting --------------------------------------------- *)

let view_tests =
  [
    Alcotest.test_case "large payload decodes as a view, copying nothing"
      `Quick (fun () ->
        Test_sgwire.with_sg ~on:true ~threshold:64 (fun () ->
            let mint = Mint.create () in
            let str = Mint.string_ mint ~max_len:None in
            let enc = Encoding.xdr in
            let payload = String.make 1024 'x' in
            let droots = [ Stub_opt.Dvalue (str, Pres.Terminated_string) ] in
            let buf = Mbuf.create 2048 in
            Stub_opt.compile_encoder ~enc ~mint ~named:[]
              [
                Plan_compile.Rvalue
                  ( Mplan.Rparam { index = 0; name = "p"; deref = false },
                    str, Pres.Terminated_string );
              ]
              buf
              [| Value.Vstring payload |];
            let wire = Mbuf.contents buf in
            let dec_view =
              Stub_opt.compile_decoder ~enc ~mint ~named:[] ~views:true droots
            in
            Mbuf.reset_reader_stats ();
            let out = dec_view (Mbuf.reader_of_bytes wire) in
            let st = Mbuf.reader_stats () in
            Alcotest.(check int) "payload bytes copied" 0 st.Mbuf.rbytes_copied;
            Alcotest.(check bool)
              "payload bytes viewed" true
              (st.Mbuf.rbytes_viewed >= 1024);
            (match out.(0) with
            | Value.Vstring_view v ->
                Alcotest.(check string)
                  "view contents" payload (Value.string_of_view v)
            | _ -> Alcotest.fail "expected a Vstring_view");
            match Value.materialize out.(0) with
            | Value.Vstring s ->
                Alcotest.(check string) "materialized contents" payload s
            | _ -> Alcotest.fail "materialize did not yield an owned string"));
  ]

(* -- decoder cache ----------------------------------------------------- *)

let cache_tests =
  [
    Alcotest.test_case "warm decoder compilations hit both caches" `Quick
      (fun () ->
        Plan_cache.reset_all ();
        let mint, idx, pres = int4_struct () in
        let droots = [ Stub_opt.Dvalue (idx, pres) ] in
        for _ = 1 to 10 do
          ignore
            (Stub_opt.compile_decoder ~enc:Encoding.xdr ~mint ~named:[] droots
              : Stub_opt.decoder)
        done;
        (* the plan cache sits behind the decoder-closure cache, so hit
           it directly as dump-plan and the C back ends do *)
        for _ = 1 to 10 do
          ignore
            (Plan_cache.dplan ~enc:Encoding.xdr ~mint ~named:[]
               [ Dplan_compile.Dvalue (idx, pres) ]
              : Dplan.plan)
        done;
        let stats name =
          match List.assoc_opt name (Plan_cache.all_stats ()) with
          | Some st -> st
          | None -> Alcotest.fail ("no cache registered under " ^ name)
        in
        let dec = stats "stub_opt.decoder" in
        Alcotest.(check int) "decoder misses" 1 dec.Plan_cache.misses;
        Alcotest.(check int) "decoder hits" 9 dec.Plan_cache.hits;
        let dp = stats "dplan" in
        (* one miss from the decoder compilation, then 10 direct hits *)
        Alcotest.(check int) "dplan misses" 1 dp.Plan_cache.misses;
        Alcotest.(check int) "dplan hits" 10 dp.Plan_cache.hits);
  ]

let suite =
  [
    ("decplan:differential", property_tests);
    ("decplan:failures", failure_tests);
    ("decplan:views", view_tests);
    ("decplan:cache", cache_tests);
  ]
