(* Structural tests on the optimizing plan compiler: the section 3
   decisions must actually appear in the plans. *)

let test name f = Alcotest.test_case name `Quick f

let rec ops_count pred ops =
  List.fold_left
    (fun acc (op : Mplan.op) ->
      let self = if pred op then 1 else 0 in
      let sub =
        match op with
        | Mplan.Loop { body; _ } -> ops_count pred body
        | Mplan.Switch { arms; default; _ } ->
            List.fold_left (fun a (arm : Mplan.arm) -> a + ops_count pred arm.Mplan.a_body) 0 arms
            + (match default with None -> 0 | Some (_, b) -> ops_count pred b)
        | _ -> 0
      in
      acc + self + sub)
    0 ops

let is_chunk = function Mplan.Chunk _ -> true | _ -> false
let is_ensure_count = function Mplan.Ensure_count _ -> true | _ -> false
let is_atom_array = function Mplan.Put_atom_array _ -> true | _ -> false
let is_call = function Mplan.Call _ -> true | _ -> false

let rv0 name = Mplan.Rparam { index = 0; name; deref = false }

let compile ?chunked enc mint named roots =
  Plan_compile.compile ~enc ~mint ~named ?chunked roots

let plan_tests =
  [
    test "the stat structure compiles to one chunk with one check" (fun () ->
        (* 30 int32 fields plus a 16-byte tag: the paper's fixed segment *)
        let m = Mint.create () in
        let fields = Mint.fixed_array m ~elem:(Mint.int32 m) ~len:30 in
        let tag = Mint.fixed_array m ~elem:(Mint.char8 m) ~len:16 in
        let stat = Mint.struct_ m [ ("fields", fields); ("tag", tag) ] in
        let pres =
          Pres.Struct
            [ ("fields", Pres.Fixed_array Pres.Direct); ("tag", Pres.Fixed_array Pres.Direct) ]
        in
        let plan =
          compile Encoding.xdr m [] [ Plan_compile.Rvalue (rv0 "s", stat, pres) ]
        in
        match plan.Plan_compile.p_ops with
        | [ Mplan.Chunk { size; items; check = true; _ } ] ->
            Alcotest.(check int) "size" 136 size;
            Alcotest.(check int) "items" 31 (List.length items)
        | ops ->
            Alcotest.failf "expected a single 136-byte chunk, got:@.%a" (fun ppf () -> Mplan.pp ppf ops) ())
    ;
    test "scalar sequences become a single tight-loop op" (fun () ->
        let m = Mint.create () in
        let seq = Mint.array m ~elem:(Mint.int32 m) ~min_len:0 ~max_len:None in
        let pres =
          Pres.Counted_seq { len_field = "len"; buf_field = "val"; elem = Pres.Direct }
        in
        let plan =
          compile Encoding.xdr m [] [ Plan_compile.Rvalue (rv0 "a", seq, pres) ]
        in
        Alcotest.(check int) "one atom-array op" 1
          (ops_count is_atom_array plan.Plan_compile.p_ops);
        Alcotest.(check int) "no element loop" 0
          (ops_count (function Mplan.Loop _ -> true | _ -> false)
             plan.Plan_compile.p_ops))
    ;
    test "aggregate sequences get one reservation for the whole run" (fun () ->
        let m = Mint.create () in
        let pair = Mint.struct_ m [ ("x", Mint.int32 m); ("y", Mint.int32 m) ] in
        let seq = Mint.array m ~elem:pair ~min_len:0 ~max_len:None in
        let pres =
          Pres.Counted_seq
            {
              len_field = "len"; buf_field = "val";
              elem = Pres.Struct [ ("x", Pres.Direct); ("y", Pres.Direct) ];
            }
        in
        let plan =
          compile Encoding.xdr m [] [ Plan_compile.Rvalue (rv0 "a", seq, pres) ]
        in
        Alcotest.(check int) "ensure_count present" 1
          (ops_count is_ensure_count plan.Plan_compile.p_ops);
        (* the per-element chunks must skip their own checks *)
        Alcotest.(check int) "no checked chunks inside the loop" 0
          (ops_count
             (function Mplan.Chunk { check = true; _ } -> true | _ -> false)
             plan.Plan_compile.p_ops
          - ops_count
              (fun op ->
                match op with Mplan.Chunk { check = true; _ } -> true | _ -> false)
              (List.filter (function Mplan.Loop _ -> false | _ -> true)
                 plan.Plan_compile.p_ops)))
    ;
    test "chunked:false splits every atom into its own chunk" (fun () ->
        let m = Mint.create () in
        let s =
          Mint.struct_ m
            [ ("a", Mint.int32 m); ("b", Mint.int32 m); ("c", Mint.int32 m) ]
        in
        let pres =
          Pres.Struct [ ("a", Pres.Direct); ("b", Pres.Direct); ("c", Pres.Direct) ]
        in
        let merged =
          compile Encoding.xdr m [] [ Plan_compile.Rvalue (rv0 "s", s, pres) ]
        in
        let split =
          compile ~chunked:false Encoding.xdr m []
            [ Plan_compile.Rvalue (rv0 "s", s, pres) ]
        in
        Alcotest.(check int) "merged: one chunk" 1
          (ops_count is_chunk merged.Plan_compile.p_ops);
        Alcotest.(check int) "split: three chunks" 3
          (ops_count is_chunk split.Plan_compile.p_ops))
    ;
    test "recursion compiles to a named subroutine, not infinite inline"
      (fun () ->
        let m = Mint.create () in
        let node = Mint.reserve m in
        let next = Mint.array m ~elem:node ~min_len:0 ~max_len:(Some 1) in
        Mint.set m node (Mint.Struct [ ("v", Mint.int32 m); ("next", next) ]);
        let pres =
          Pres.Struct [ ("v", Pres.Direct); ("next", Pres.Opt_ptr (Pres.Ref "node")) ]
        in
        let plan =
          compile Encoding.xdr m [ ("node", (node, pres)) ]
            [ Plan_compile.Rvalue (rv0 "l", node, pres) ]
        in
        Alcotest.(check bool) "has subroutine" true
          (List.mem_assoc "node" plan.Plan_compile.p_subs);
        let sub = List.assoc "node" plan.Plan_compile.p_subs in
        Alcotest.(check int) "subroutine calls itself" 1 (ops_count is_call sub))
    ;
    test "CDR loses static positions after strings, XDR does not" (fun () ->
        let m = Mint.create () in
        let s =
          Mint.struct_ m
            [ ("name", Mint.string_ m ~max_len:None); ("n", Mint.int32 m) ]
        in
        let pres =
          Pres.Struct [ ("name", Pres.Terminated_string); ("n", Pres.Direct) ]
        in
        let cdr_plan =
          compile Encoding.cdr m [] [ Plan_compile.Rvalue (rv0 "s", s, pres) ]
        in
        let xdr_plan =
          compile Encoding.xdr m [] [ Plan_compile.Rvalue (rv0 "s", s, pres) ]
        in
        let aligns ops =
          ops_count (function Mplan.Align _ -> true | _ -> false) ops
        in
        (* CDR must realign dynamically before the int; XDR's 4-byte
           padding discipline keeps the position statically known *)
        Alcotest.(check bool) "cdr realigns" true (aligns cdr_plan.Plan_compile.p_ops >= 1);
        Alcotest.(check int) "xdr needs no dynamic align" 0
          (aligns xdr_plan.Plan_compile.p_ops))
    ;
    test "max_size: fixed, bounded and unbounded classes" (fun () ->
        let m = Mint.create () in
        let fixed = Mint.struct_ m [ ("a", Mint.int32 m); ("b", Mint.int32 m) ] in
        let fixed_pres = Pres.Struct [ ("a", Pres.Direct); ("b", Pres.Direct) ] in
        let bounded = Mint.string_ m ~max_len:(Some 16) in
        let unbounded = Mint.string_ m ~max_len:None in
        (match Plan_compile.max_size ~enc:Encoding.xdr ~mint:m fixed fixed_pres with
        | Some n -> Alcotest.(check bool) "fixed is at least 8" true (n >= 8)
        | None -> Alcotest.fail "fixed type classified unbounded");
        (match
           Plan_compile.max_size ~enc:Encoding.xdr ~mint:m bounded
             Pres.Terminated_string
         with
        | Some n -> Alcotest.(check bool) "bounded" true (n >= 20)
        | None -> Alcotest.fail "bounded string classified unbounded");
        Alcotest.(check bool) "unbounded is None" true
          (Plan_compile.max_size ~enc:Encoding.xdr ~mint:m unbounded
             Pres.Terminated_string
          = None))
    ;
    test "constant string keys advance positions statically" (fun () ->
        (* after a constant operation key, CDR can still chunk the next
           fixed data: no dynamic Align between them *)
        let m = Mint.create () in
        let plan =
          compile Encoding.cdr m []
            [
              Plan_compile.Rconst_str "send";
              Plan_compile.Rvalue (rv0 "x", Mint.int32 m, Pres.Direct);
            ]
        in
        Alcotest.(check int) "no dynamic align" 0
          (ops_count (function Mplan.Align _ -> true | _ -> false)
             plan.Plan_compile.p_ops))
    ;
  ]

let suite = [ ("plan:structure", plan_tests) ]
