(* The section 2.2 presentation variation: string parameters with
   explicit length, eliminating strlen from the stubs. *)

let test name f = Alcotest.test_case name `Quick f

let mail_idl = "interface Mail { void send(in string msg); };"

let signature_tests =
  [
    test "Mail_send gains the paper's len parameter" (fun () ->
        let spec = Corba_parser.parse ~file:"mail.idl" mail_idl in
        let pc = Presgen_corba.generate_len spec [ "Mail" ] in
        let header = Cast_pp.file pc.Pres_c.pc_decls in
        let expected =
          "void Mail_send(Mail _obj, char *msg, uint32_t msg_len, \
           flick_env_t *_ev);"
        in
        let found = ref false in
        String.split_on_char '\n' header
        |> List.iter (fun l -> if l = expected then found := true);
        if not !found then
          Alcotest.failf "expected %S in header:\n%s" expected header);
    test "generated stub marshals without strlen" (fun () ->
        let spec = Corba_parser.parse ~file:"mail.idl" mail_idl in
        let pc = Presgen_corba.generate_len spec [ "Mail" ] in
        let client = Backend_base.generate_client Be_iiop.transport pc in
        let contains hay needle =
          let nl = String.length needle and hl = String.length hay in
          let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool)
          "uses flick_put_str_n" true
          (contains client "flick_put_str_n(_buf, msg, msg_len");
        Alcotest.(check bool) "no strlen in marshal path" false
          (contains client "strlen(msg)"));
    test "wire format is unchanged by the presentation" (fun () ->
        (* byte-identical messages from both presentations: only the
           programmer's contract differs, not the network contract *)
        let spec = Corba_parser.parse ~file:"mail.idl" mail_idl in
        let plain = Presgen_corba.generate spec [ "Mail" ] in
        let len = Presgen_corba.generate_len spec [ "Mail" ] in
        let enc = Encoding.cdr in
        let encode pc =
          let s = Paper_fixtures.request_spec pc ~op:"send" in
          let e =
            Stub_opt.compile_encoder ~enc ~mint:s.Paper_fixtures.ms_mint
              ~named:s.Paper_fixtures.ms_named s.Paper_fixtures.ms_roots
          in
          let b = Mbuf.create 64 in
          e b [| Value.Vstring "hello" |];
          Bytes.to_string (Mbuf.contents b)
        in
        Alcotest.(check string) "same bytes" (encode plain) (encode len));
  ]

let mail_len_main =
  {c|#include <stdio.h>
#include <string.h>
#include "mail.h"

static char received[256];

void Mail_send_impl(Mail _obj, char *msg, uint32_t msg_len, flick_env_t *_ev)
{
  (void)_obj; (void)_ev;
  memcpy(received, msg, msg_len);
  received[msg_len] = 0;
}

int main(void)
{
  struct flick_object obj;
  flick_env_t ev;
  obj.dispatch = Mail_dispatch;
  obj.impl_state = &obj;
  obj.key = "mail";
  flick_env_clear(&ev);
  Mail_send(&obj, "explicit length", 15, &ev);
  if (strcmp(received, "explicit length") != 0) return 1;
  printf("len ok\n");
  return 0;
}
|c}

let loopback_tests =
  [
    test "loopback: explicit-length presentation over IIOP" (fun () ->
        let spec = Corba_parser.parse ~file:"mail.idl" mail_idl in
        let pc = Presgen_corba.generate_len spec [ "Mail" ] in
        Test_backend.run_loopback "mail-len-iiop" (Be_iiop.generate pc)
          mail_len_main);
  ]

let suite =
  [
    ("len-pres:signatures", signature_tests);
    ("len-pres:loopback", loopback_tests);
  ]
