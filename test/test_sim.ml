(* Tests for the discrete-event simulator and the end-to-end models. *)

let test name f = Alcotest.test_case name `Quick f

let sim_core_tests =
  [
    test "events fire in time order" (fun () ->
        let sim = Sim_core.create () in
        let log = ref [] in
        Sim_core.schedule sim ~delay:3. (fun () -> log := 3 :: !log);
        Sim_core.schedule sim ~delay:1. (fun () -> log := 1 :: !log);
        Sim_core.schedule sim ~delay:2. (fun () -> log := 2 :: !log);
        Sim_core.run sim;
        Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (List.rev !log);
        Alcotest.(check (float 1e-9)) "clock" 3. (Sim_core.now sim));
    test "simultaneous events fire in schedule order" (fun () ->
        let sim = Sim_core.create () in
        let log = ref [] in
        for i = 1 to 5 do
          Sim_core.schedule sim ~delay:1. (fun () -> log := i :: !log)
        done;
        Sim_core.run sim;
        Alcotest.(check (list int)) "order" [ 1; 2; 3; 4; 5 ] (List.rev !log));
    test "events can schedule more events" (fun () ->
        let sim = Sim_core.create () in
        let count = ref 0 in
        let rec tick n =
          if n > 0 then
            Sim_core.schedule sim ~delay:1. (fun () ->
                incr count;
                tick (n - 1))
        in
        tick 10;
        Sim_core.run sim;
        Alcotest.(check int) "ticks" 10 !count;
        Alcotest.(check (float 1e-9)) "clock" 10. (Sim_core.now sim));
    test "negative delays are rejected" (fun () ->
        let sim = Sim_core.create () in
        match Sim_core.schedule sim ~delay:(-1.) (fun () -> ()) with
        | _ -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
    test "run_until stops the clock" (fun () ->
        let sim = Sim_core.create () in
        let fired = ref 0 in
        Sim_core.schedule sim ~delay:1. (fun () -> incr fired);
        Sim_core.schedule sim ~delay:5. (fun () -> incr fired);
        Sim_core.run_until sim 2.;
        Alcotest.(check int) "only the first" 1 !fired);
    test "heap survives many events" (fun () ->
        let sim = Sim_core.create () in
        let n = 10_000 in
        let fired = ref 0 in
        for i = 0 to n - 1 do
          Sim_core.schedule sim ~delay:(float_of_int (i mod 97)) (fun () ->
              incr fired)
        done;
        Sim_core.run sim;
        Alcotest.(check int) "all fired" n !fired);
  ]

let link_tests =
  [
    test "serialization delay matches bandwidth" (fun () ->
        let sim = Sim_core.create () in
        let link =
          Link.make ~sim ~name:"test" ~bandwidth_bps:8e6 ~latency:0.
            ~per_msg_cpu:0.
        in
        let arrived = ref 0. in
        Link.transmit link ~bytes:1000 (fun () -> arrived := Sim_core.now sim);
        Sim_core.run sim;
        (* 8000 bits at 8 Mbit/s = 1 ms *)
        Alcotest.(check (float 1e-9)) "1ms" 1e-3 !arrived);
    test "messages queue behind each other" (fun () ->
        let sim = Sim_core.create () in
        let link =
          Link.make ~sim ~name:"test" ~bandwidth_bps:8e6 ~latency:0.
            ~per_msg_cpu:0.
        in
        let second = ref 0. in
        Link.transmit link ~bytes:1000 (fun () -> ());
        Link.transmit link ~bytes:1000 (fun () -> second := Sim_core.now sim);
        Sim_core.run sim;
        Alcotest.(check (float 1e-9)) "2ms" 2e-3 !second);
  ]

let rpc_sim_tests =
  [
    test "fast stubs saturate a slow wire" (fun () ->
        let free_stub =
          {
            Rpc_sim.sc_name = "free";
            sc_marshal = (fun _ -> 0.);
            sc_unmarshal = (fun _ -> 0.);
            sc_per_call = 0.;
          }
        in
        let net ~sim =
          Link.make ~sim ~name:"t" ~bandwidth_bps:7.5e6 ~latency:0.
            ~per_msg_cpu:0.
        in
        let tput =
          Rpc_sim.round_trip_throughput ~net ~cost:free_stub
            ~msg_bytes:1048576 ()
        in
        (* with free marshaling, throughput approaches the wire's
           effective bandwidth *)
        Alcotest.(check bool) "near 7.5 Mbit/s" true
          (tput > 7.0 && tput <= 7.6));
    test "slow stubs, not the wire, become the bottleneck" (fun () ->
        let slow_stub =
          {
            Rpc_sim.sc_name = "slow";
            (* 8 MB/s marshal: 1 Mbit of payload costs ~15.6ms *)
            sc_marshal = (fun b -> float_of_int b /. 8e6);
            sc_unmarshal = (fun b -> float_of_int b /. 8e6);
            sc_per_call = 0.;
          }
        in
        let net ~sim =
          Link.make ~sim ~name:"t" ~bandwidth_bps:70e6 ~latency:0.
            ~per_msg_cpu:0.
        in
        let tput =
          Rpc_sim.round_trip_throughput ~net ~cost:slow_stub ~msg_bytes:1048576
            ()
        in
        (* marshal+wire+unmarshal in series: well under the 70 Mbit wire *)
        Alcotest.(check bool) "marshal-bound" true (tput < 30.));
  ]

let mach_model_tests =
  [
    test "calibration reproduces the paper's anchors" (fun () ->
        let model =
          Mach_model.calibrate ~flick_per_byte:50e-9 ~mig_per_byte:400e-9
        in
        let at bytes which = Mach_model.throughput model which ~bytes in
        (* crossover at 8K *)
        Alcotest.(check (float 1.)) "crossover" 8192. (Mach_model.crossover model);
        Alcotest.(check bool) "MIG wins small" true (at 64 `Mig > at 64 `Flick);
        Alcotest.(check bool) "Flick wins large" true
          (at 65536 `Flick > at 65536 `Mig);
        (* the 2x small-message anchor *)
        let ratio = at 64 `Mig /. at 64 `Flick in
        Alcotest.(check bool) "2x at 64B" true (ratio > 1.9 && ratio < 2.1));
    test "calibration rejects impossible per-byte costs" (fun () ->
        match Mach_model.calibrate ~flick_per_byte:10e-9 ~mig_per_byte:5e-9 with
        | _ -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
  ]

(* Pin the retransmit accounting of the lossy round-trip model: every
   n-th logical request is lost exactly once and retried exactly once,
   so [sim.rpc.retransmits] must grow by floor(rounds / n) — in
   particular [drop_every:1] (back-to-back drops on every round) counts
   one retransmit per round, never two, because the retransmission
   itself bypasses the loss schedule. *)
let counter_of name =
  List.fold_left
    (fun acc s ->
      match s with Obs.Scounter (n, v) when n = name -> v | _ -> acc)
    0 (Obs.snapshot ())

let retransmit_tests =
  let run_lossy ~rounds ~drop_every =
    let before = counter_of "sim.rpc.retransmits" in
    let trips_before = counter_of "sim.rpc.round_trips" in
    let cost =
      {
        Rpc_sim.sc_name = "t";
        sc_marshal = (fun _ -> 1e-6);
        sc_unmarshal = (fun _ -> 1e-6);
        sc_per_call = 1e-6;
      }
    in
    let tput =
      Rpc_sim.round_trip_throughput ~net:Link.ethernet_100 ~cost
        ~msg_bytes:1024 ~rounds ~drop_every ()
    in
    ( counter_of "sim.rpc.retransmits" - before,
      counter_of "sim.rpc.round_trips" - trips_before,
      tput )
  in
  [
    test "every 3rd of 9 rounds retransmits once" (fun () ->
        let retx, trips, _ = run_lossy ~rounds:9 ~drop_every:3 in
        Alcotest.(check int) "retransmits" 3 retx;
        Alcotest.(check int) "all rounds still complete" 9 trips);
    test "back-to-back drops count one retransmit each" (fun () ->
        let retx, trips, _ = run_lossy ~rounds:4 ~drop_every:1 in
        (* the naive double-count bug would report 8 here *)
        Alcotest.(check int) "retransmits" 4 retx;
        Alcotest.(check int) "all rounds still complete" 4 trips);
    test "loss-free run leaves the counter alone" (fun () ->
        let before = counter_of "sim.rpc.retransmits" in
        let cost =
          {
            Rpc_sim.sc_name = "t";
            sc_marshal = (fun _ -> 1e-6);
            sc_unmarshal = (fun _ -> 1e-6);
            sc_per_call = 1e-6;
          }
        in
        ignore
          (Rpc_sim.round_trip_throughput ~net:Link.ethernet_100 ~cost
             ~msg_bytes:1024 ~rounds:4 ());
        Alcotest.(check int) "retransmits" before
          (counter_of "sim.rpc.retransmits"));
    test "retransmission delays the lossy run" (fun () ->
        let _, _, lossy = run_lossy ~rounds:8 ~drop_every:2 in
        let _, _, clean = run_lossy ~rounds:8 ~drop_every:1_000_000 in
        Alcotest.(check bool) "lossy is slower" true (lossy < clean));
  ]

let cancellable_tests =
  [
    test "cancelled events do not fire" (fun () ->
        let sim = Sim_core.create () in
        let fired = ref [] in
        let h1 =
          Sim_core.schedule_cancellable sim ~delay:1. (fun () ->
              fired := 1 :: !fired)
        in
        let _h2 =
          Sim_core.schedule_cancellable sim ~delay:2. (fun () ->
              fired := 2 :: !fired)
        in
        Sim_core.cancel h1;
        Alcotest.(check bool) "reads back cancelled" true (Sim_core.cancelled h1);
        Sim_core.run sim;
        Alcotest.(check (list int)) "only the live event fired" [ 2 ] !fired);
    test "cancel after firing is a no-op" (fun () ->
        let sim = Sim_core.create () in
        let fired = ref 0 in
        let h =
          Sim_core.schedule_cancellable sim ~delay:1. (fun () -> incr fired)
        in
        Sim_core.run sim;
        Sim_core.cancel h;
        Alcotest.(check int) "fired once" 1 !fired;
        Alcotest.(check bool) "not reported cancelled" false
          (Sim_core.cancelled h));
  ]

let suite =
  [
    ("sim:core", sim_core_tests);
    ("sim:cancellable", cancellable_tests);
    ("sim:link", link_tests);
    ("sim:rpc", rpc_sim_tests);
    ("sim:retransmit", retransmit_tests);
    ("sim:mach-model", mach_model_tests);
  ]
