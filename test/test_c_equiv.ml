(* The strongest cross-validation: the marshal statements the C back end
   emits, compiled by gcc and executed, must produce byte-for-byte the
   same message as the OCaml stub engine executing the same plan.

   This closes the loop on the central design decision (one marshal
   plan, two consumers): the loopback tests prove generated C is
   self-consistent, the qcheck properties prove the engines agree with
   each other, and this test proves C and engine agree. *)

let test name f = Alcotest.test_case name `Quick f

let hex b =
  String.concat ""
    (List.map (Printf.sprintf "%02x")
       (List.map Char.code (List.of_seq (String.to_seq (Bytes.to_string b)))))

(* the value under test: two rectangles and a string, exercising chunks,
   fused loops, string blits and padding *)
let mint_and_pres () =
  let m = Mint.create () in
  let coord = Mint.struct_ m [ ("x", Mint.int32 m); ("y", Mint.int32 m) ] in
  let rect = Mint.struct_ m [ ("min", coord); ("max", coord) ] in
  let rects = Mint.array m ~elem:rect ~min_len:0 ~max_len:(Some 8) in
  let s = Mint.string_ m ~max_len:(Some 32) in
  let payload = Mint.struct_ m [ ("name", s); ("boxes", rects) ] in
  let coord_pres = Pres.Struct [ ("x", Pres.Direct); ("y", Pres.Direct) ] in
  let pres =
    Pres.Struct
      [
        ("name", Pres.Terminated_string);
        ( "boxes",
          Pres.Counted_seq
            {
              len_field = "_length";
              buf_field = "_buffer";
              elem = Pres.Struct [ ("min", coord_pres); ("max", coord_pres) ];
            } );
      ]
  in
  (m, payload, pres)

let value =
  Value.Vstruct
    [|
      Value.Vstring "cross-check";
      Value.Varray
        [|
          Value.Vstruct
            [|
              Value.Vstruct [| Value.Vint 1; Value.Vint (-2) |];
              Value.Vstruct [| Value.Vint 300000; Value.Vint 4 |];
            |];
          Value.Vstruct
            [|
              Value.Vstruct [| Value.Vint (-5); Value.Vint 6 |];
              Value.Vstruct [| Value.Vint 7; Value.Vint 8 |];
            |];
        |];
    |]

(* C initializers for the same value, against the generated-style types *)
let c_value_decl =
  {c|
typedef struct { int32_t x; int32_t y; } coord;
typedef struct { coord min; coord max; } rect;
typedef struct { uint32_t _length; rect *_buffer; } rect_seq;
typedef struct { char *name; rect_seq boxes; } payload;

static rect boxes[2] = {
  { { 1, -2 }, { 300000, 4 } },
  { { -5, 6 }, { 7, 8 } },
};
static payload v = { "cross-check", { 2, boxes } };
|c}

let c_equiv_case enc =
  test
    (Printf.sprintf "generated C bytes equal engine bytes (%s)"
       enc.Encoding.name)
    (fun () ->
      let m, idx, pres = mint_and_pres () in
      let roots =
        [
          Plan_compile.Rvalue
            (Mplan.Rparam { index = 0; name = "(v)"; deref = false }, idx, pres);
        ]
      in
      (* engine bytes *)
      let encoder = Stub_opt.compile_encoder ~enc ~mint:m ~named:[] roots in
      let b = Mbuf.create 256 in
      encoder b [| value |];
      let expected = hex (Mbuf.contents b) in
      (* generated C bytes *)
      let plan = Plan_compile.compile ~enc ~mint:m ~named:[] roots in
      let stmts = Cgen.marshal_stmts ~enc plan.Plan_compile.p_ops in
      let body = String.concat "" (List.map (Cast_pp.stmt ~indent:1) stmts) in
      let main_c =
        Printf.sprintf
          {c|#include <stdio.h>
#include "flick_runtime.h"
%s
int main(void)
{
  size_t i;
  flick_buf_t buf_store;
  flick_buf_t *_buf = &buf_store;
  flick_buf_init(_buf);
%s
  for (i = 0; i < _buf->pos; i++) printf("%%02x", (unsigned char)_buf->data[i]);
  printf("\n");
  return 0;
}
|c}
          c_value_decl body
      in
      let dir =
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "flick-cequiv-%d-%s" (Unix.getpid ())
             enc.Encoding.name)
      in
      (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      Runtime.write_to dir;
      let oc = open_out (Filename.concat dir "main.c") in
      output_string oc main_c;
      close_out oc;
      let rc =
        Sys.command
          (Printf.sprintf
             "cd %s && gcc -std=c99 -Wall -Wno-unused-function main.c -o eq \
              2>build.err && ./eq > out.txt"
             (Filename.quote dir))
      in
      if rc <> 0 then begin
        let slurp f =
          try
            let ic = open_in (Filename.concat dir f) in
            let n = in_channel_length ic in
            let s = really_input_string ic n in
            close_in ic;
            s
          with Sys_error _ -> "<missing>"
        in
        Alcotest.failf "C build/run failed:\n%s\n--- main.c ---\n%s"
          (slurp "build.err") main_c
      end;
      let ic = open_in (Filename.concat dir "out.txt") in
      let got = String.trim (input_line ic) in
      close_in ic;
      Alcotest.(check string) "bytes" expected got)

(* the C back end only targets fixed-layout encodings; value-dependent
   wire formats (msgpack, cbor) have no Cgen lowering *)
let fixed_encodings =
  List.filter (fun e -> e.Encoding.var = None) Encoding.all

let suite =
  [ ("c-equivalence", List.map c_equiv_case fixed_encodings) ]
