(* The request recorder, end to end:

   1. Exact attribution: for every Ok request under random 1-64
      connection interleavings, the eight phase durations (integer
      virtual nanoseconds) sum to exactly the client-observed round
      trip — the client and the recorder round the same virtual-clock
      instants with the same rule, so the telescoped sum reconciles to
      the nanosecond, with no float tolerance (>= 300 random cases).

   2. The flight ring: fault outcomes (killed connection, bad request,
      shed, dropped reply) are always sampled into the ring even when
      Ok head-sampling would drop everything; the ring keeps exactly
      its configured capacity, newest records winning; and with the
      recorder disabled nothing is recorded at all.

   3. Gateway stitching: one request through the proxy yields two
      records sharing a trace id whose per-hop phase sums telescope to
      the exact client round trip; the two-hop timeline is pinned as a
      golden. *)

module Q = QCheck

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* Every scenario runs with the recorder freshly configured and leaves
   it disabled and empty, so the rest of the suite (and the recorder's
   global state) is unaffected. *)
let with_recorder ?(capacity = 256) ?(sample_every = 1) f =
  Obs_request.configure ~ring_capacity:capacity ~sample_every ();
  Obs_request.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs_request.set_enabled false;
      Obs_request.set_sink None;
      Obs_request.reset_metrics ();
      Obs_request.configure ~ring_capacity:256 ~sample_every:1 ())
    f

let spec_for = Test_serve.spec_for

let ints_frame ~seq ~bytes =
  let spec = spec_for Encoding.xdr `Ints in
  Rpc_serve.request_frame spec ~seq [| Paper_fixtures.payload `Ints ~bytes |]

(* -- 1. exact phase-sum reconciliation ------------------------------ *)

(* A closed-open client: every request is transmitted through [send]
   at a random virtual time on a random connection, and each reply is
   reconciled on delivery against the request's finished record. *)
let reconcile_prop (case : Test_serve.case) =
  with_recorder (fun () ->
      let sim = Sim_core.create () in
      let ingress = Link.ethernet_100 ~sim in
      let egress = Link.ethernet_100 ~sim in
      let total = List.length case.Test_serve.k_reqs in
      let config =
        { Rpc_serve.default_config with Rpc_serve.max_in_flight = total }
      in
      let t = Rpc_serve.create ~sim ~config ~ingress ~egress () in
      List.iter
        (fun p -> Rpc_serve.register t (spec_for Encoding.xdr p))
        [ `Ints; `Rects; `Dirents ];
      (* finished records by seq, via the sink *)
      let finished = Hashtbl.create 64 in
      Obs_request.set_sink
        (Some (fun r -> Hashtbl.replace finished (Obs_request.seq r) r));
      let send_ns = Hashtbl.create 64 in
      let checked = ref 0 in
      let deliver data =
        let now_ns = Obs_request.ns_of_s (Sim_core.now sim) in
        List.iter
          (fun (status, seq, _) ->
            if status = Rpc_serve.Sok then begin
              let rtt = now_ns - Hashtbl.find send_ns seq in
              match Hashtbl.find_opt finished seq with
              | None -> Q.Test.fail_reportf "seq %d: no finished record" seq
              | Some r ->
                  if Obs_request.outcome r <> Obs_request.Rok then
                    Q.Test.fail_reportf "seq %d: outcome %s" seq
                      (Obs_request.outcome_name (Obs_request.outcome r));
                  let sum = Obs_request.phase_total_ns r in
                  if sum <> rtt then
                    Q.Test.fail_reportf
                      "seq %d: phase sum %d ns <> client RTT %d ns" seq sum
                      rtt;
                  if Obs_request.rtt_ns r <> rtt then
                    Q.Test.fail_reportf
                      "seq %d: record rtt %d ns <> client RTT %d ns" seq
                      (Obs_request.rtt_ns r) rtt;
                  incr checked
            end)
          (Rpc_serve.parse_replies data)
      in
      let conns = case.Test_serve.k_conns in
      let cs = Array.init conns (fun _ -> Rpc_serve.connect t ~deliver) in
      List.iter
        (fun r ->
          let spec = spec_for Encoding.xdr r.Test_serve.r_payload in
          let vals =
            [| Paper_fixtures.payload r.Test_serve.r_payload
                 ~bytes:r.Test_serve.r_bytes |]
          in
          let frame =
            Rpc_serve.request_frame spec ~seq:r.Test_serve.r_seq vals
          in
          Sim_core.schedule sim ~delay:r.Test_serve.r_at (fun () ->
              Hashtbl.replace send_ns r.Test_serve.r_seq
                (Obs_request.ns_of_s (Sim_core.now sim));
              Rpc_serve.send cs.(r.Test_serve.r_conn mod conns) frame))
        case.Test_serve.k_reqs;
      Sim_core.run sim;
      if !checked <> total then
        Q.Test.fail_reportf "reconciled %d of %d requests" !checked total;
      true)

let reconcile_tests =
  [
    QCheck_alcotest.to_alcotest
      (Q.Test.make ~name:"phase sums == client RTT exactly (xdr)" ~count:300
         Test_serve.arbitrary_case reconcile_prop);
  ]

(* -- 2. the flight ring --------------------------------------------- *)

let ring_outcomes () =
  List.map
    (fun r -> (Obs_request.outcome r, Obs_request.seq r))
    (Obs_request.ring_records ())

(* A garbage length prefix with a request already in flight: the kill
   flushes the victim's partial record into the ring; with nothing in
   flight it leaves a synthetic seq -1 marker instead. *)
let test_killed_conn_sampled () =
  with_recorder ~sample_every:1_000_000 (fun () ->
      let sim, t = Test_serve.make_server () in
      let c = Rpc_serve.connect t ~deliver:(fun _ -> ()) in
      let garbage = Bytes.create 4 in
      Bytes.set_int32_be garbage 0 0x7fffffffl;
      Rpc_serve.send c (ints_frame ~seq:9 ~bytes:64);
      Rpc_serve.send c garbage;
      Sim_core.run sim;
      check
        (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
        "in-flight record flushed into the ring as killed"
        [ ("killed_conn", 9) ]
        (List.map (fun (o, s) -> (Obs_request.outcome_name o, s))
           (ring_outcomes ()));
      (* and on a fresh connection with nothing in flight: the marker *)
      let c2 = Rpc_serve.connect t ~deliver:(fun _ -> ()) in
      Rpc_serve.feed c2 garbage;
      check
        (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
        "kill with nothing in flight leaves a marker"
        [ ("killed_conn", 9); ("killed_conn", -1) ]
        (List.map (fun (o, s) -> (Obs_request.outcome_name o, s))
           (ring_outcomes ())))

let test_fault_outcomes_always_sampled () =
  (* head-sampling would drop every Ok record; the faults must land in
     the ring regardless *)
  with_recorder ~sample_every:1_000_000 (fun () ->
      let sim = Sim_core.create () in
      let ingress = Link.ethernet_100 ~sim in
      let egress = Link.ethernet_100 ~sim in
      let config =
        { Rpc_serve.default_config with Rpc_serve.max_in_flight = 1 }
      in
      let t = Rpc_serve.create ~sim ~config ~ingress ~egress () in
      Rpc_serve.register t (spec_for Encoding.xdr `Ints);
      let c = Rpc_serve.connect t ~deliver:(fun _ -> ()) in
      (* a truncated body: parses as a frame, fails to decode *)
      let frame = ints_frame ~seq:11 ~bytes:256 in
      let cut = Bytes.length frame - 100 in
      let short = Bytes.sub frame 0 cut in
      Bytes.set_int32_be short 0 (Int32.of_int (cut - 4));
      (* pipelined against a budget of 1: seq 13 sheds behind 11, and
         seq 12 lands later, completes Ok, and is head-sampled away *)
      Rpc_serve.feed c short;
      Rpc_serve.feed c (ints_frame ~seq:13 ~bytes:64);
      Sim_core.schedule sim ~delay:1e-3 (fun () ->
          Rpc_serve.feed c (ints_frame ~seq:12 ~bytes:64));
      Sim_core.run sim;
      let outcomes =
        List.sort compare
          (List.map (fun (o, s) -> (Obs_request.outcome_name o, s))
             (ring_outcomes ()))
      in
      check
        (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
        "bad request and shed forced into the ring, Ok head-sampled away"
        [ ("bad_request", 11); ("shed", 13) ]
        outcomes;
      checki "first Ok reply counted as dropped from the ring" 1
        (Obs_request.dropped_count ());
      checki "two forced samples" 2 (Obs_request.sampled_count ()))

let test_close_flushes_pending_reply () =
  with_recorder (fun () ->
      let sim, t = Test_serve.make_server () in
      let c = Rpc_serve.connect t ~deliver:(fun _ -> ()) in
      Rpc_serve.feed c (ints_frame ~seq:6 ~bytes:64);
      (* past service completion (reply queued, flush armed), then the
         client vanishes *)
      Sim_core.run_until sim 180e-6;
      Rpc_serve.close_conn c;
      Sim_core.run sim;
      match Obs_request.ring_records () with
      | [ r ] ->
          checki "the queued reply's record" 6 (Obs_request.seq r);
          check Alcotest.string "dropped outcome" "dropped"
            (Obs_request.outcome_name (Obs_request.outcome r));
          (* service ran: the timeline reaches into the service split *)
          checkb "service phases recorded" true
            (Obs_request.phase_ns r Obs_request.Handler > 0)
      | rs -> Alcotest.failf "expected exactly 1 ring record, got %d"
                (List.length rs))

let test_ring_bound () =
  with_recorder ~capacity:8 (fun () ->
      let sim, t = Test_serve.make_server () in
      let c = Rpc_serve.connect t ~deliver:(fun _ -> ()) in
      for seq = 0 to 99 do
        Sim_core.schedule sim
          ~delay:(float_of_int seq *. 1e-3)
          (fun () -> Rpc_serve.send c (ints_frame ~seq ~bytes:64))
      done;
      Sim_core.run sim;
      checki "100 records sampled" 100 (Obs_request.sampled_count ());
      let seqs = List.map Obs_request.seq (Obs_request.ring_records ()) in
      check
        (Alcotest.list Alcotest.int)
        "ring keeps the last 8, oldest first"
        [ 92; 93; 94; 95; 96; 97; 98; 99 ]
        seqs)

let test_disabled_records_nothing () =
  (* recorder off (the default): a full workload leaves no recorder
     state behind — no in-flight records, no ring entries, no counter
     movement *)
  Obs_request.clear ();
  let before_sampled = Obs_request.sampled_count () in
  let sp = Rpc_serve.run_workload ~conns:4 ~requests_per_conn:10 () in
  checki "workload ran" 40 sp.Rpc_serve.sp_ok;
  checki "ring empty" 0 (List.length (Obs_request.ring_records ()));
  checki "nothing sampled" before_sampled (Obs_request.sampled_count ());
  checki "nothing dropped" 0 (Obs_request.dropped_count ())

(* -- 3. gateway stitching ------------------------------------------- *)

let run_gateway_once () =
  let sim = Sim_core.create () in
  let gw = Rpc_gateway.create ~sim ~src:Encoding.xdr ~dst:Encoding.cdr () in
  let pc = Paper_fixtures.bench_presc `Rpcgen in
  let ms = Paper_fixtures.request_spec pc ~op:"send_ints" in
  Rpc_gateway.register gw ms ~iface:1 ~op:1;
  let vals = [| Paper_fixtures.payload `Ints ~bytes:64 |] in
  let frame = Rpc_gateway.client_frame gw ms ~iface:1 ~op:1 ~seq:0 vals in
  let finished = ref [] in
  Obs_request.set_sink (Some (fun r -> finished := r :: !finished));
  let send_ns = ref 0 and rtt = ref (-1) in
  let conn =
    Rpc_gateway.connect gw ~deliver:(fun data ->
        List.iter
          (fun (status, _, _) ->
            if status = Rpc_serve.Sok then
              rtt := Obs_request.ns_of_s (Sim_core.now sim) - !send_ns)
          (Rpc_serve.parse_replies data))
  in
  Sim_core.schedule sim ~delay:0. (fun () ->
      send_ns := Obs_request.ns_of_s (Sim_core.now sim);
      Rpc_gateway.send conn frame);
  Sim_core.run sim;
  (List.rev !finished, !rtt)

let test_gateway_two_hop_reconciles () =
  with_recorder (fun () ->
      let finished, rtt = run_gateway_once () in
      checkb "client saw the reply" true (rtt >= 0);
      match finished with
      | [ hop1; hop0 ] ->
          (* the backend hop finishes first (its flush delivery is what
             un-parks the proxy) *)
          checki "backend record is hop 1" 1 (Obs_request.hop hop1);
          checki "client-facing record is hop 0" 0 (Obs_request.hop hop0);
          checki "one trace id across both hops"
            (Obs_request.trace_id hop0)
            (Obs_request.trace_id hop1);
          checki "hop-0 skip window == hop-1 timeline"
            (Obs_request.phase_total_ns hop1)
            (Obs_request.backend_ns hop0);
          checki "two-hop phase sums == client RTT exactly" rtt
            (Obs_request.phase_total_ns hop0
            + Obs_request.phase_total_ns hop1)
      | rs -> Alcotest.failf "expected 2 finished records, got %d"
                (List.length rs))

(* The stitched two-hop timeline of one deterministic gateway request,
   pinned byte for byte: every boundary below is virtual time, so any
   drift in link modelling, service accounting, or the recorder's
   rounding shows up as a diff here. *)
let test_gateway_golden_timeline () =
  with_recorder (fun () ->
      let finished, rtt = run_gateway_once () in
      check
        (Alcotest.list Alcotest.string)
        "pinned two-hop timeline"
        [
          "{\"trace\":1,\"hop\":1,\"conn\":0,\"seq\":0,\"outcome\":\"ok\",\"t0_ns\":910057,\"rtt_ns\":2019741,\"backend_ns\":0,\"wire_queue_ns\":0,\"phases\":{\"ingress_wire_ns\":910057,\"header_parse_ns\":0,\"queue_wait_ns\":0,\"decode_ns\":42,\"handler_ns\":150000,\"encode_ns\":42,\"flush_wait_ns\":50000,\"egress_wire_ns\":909600}}";
          "{\"trace\":1,\"hop\":0,\"conn\":0,\"seq\":0,\"outcome\":\"ok\",\"t0_ns\":0,\"rtt_ns\":3839398,\"backend_ns\":2019741,\"wire_queue_ns\":0,\"phases\":{\"ingress_wire_ns\":910057,\"header_parse_ns\":0,\"queue_wait_ns\":0,\"decode_ns\":0,\"handler_ns\":0,\"encode_ns\":0,\"flush_wait_ns\":0,\"egress_wire_ns\":909600}}";
        ]
        (List.map Obs_request.record_to_json finished);
      checki "golden timeline reconciles" rtt
        (List.fold_left
           (fun acc r -> acc + Obs_request.phase_total_ns r)
           0 finished))

(* -- Chrome export: lanes and flow arrows --------------------------- *)

let test_chrome_lanes_and_flows () =
  with_recorder (fun () ->
      Obs_trace.clear ();
      Obs_trace.set_enabled true;
      Fun.protect
        ~finally:(fun () ->
          Obs_trace.set_enabled false;
          Obs_trace.clear ())
        (fun () ->
          let _, rtt = run_gateway_once () in
          checkb "request completed" true (rtt >= 0);
          let evs = Obs_trace.events () in
          let hop0 =
            List.filter (fun e -> e.Obs_trace.ev_pid = 1) evs
          and hop1 =
            List.filter (fun e -> e.Obs_trace.ev_pid = 2) evs
          in
          checkb "client hop rendered on pid 1" true (hop0 <> []);
          checkb "backend hop rendered on pid 2" true (hop1 <> []);
          let flows = List.filter_map (fun e -> e.Obs_trace.ev_flow) evs in
          checkb "flow starts at hop 0" true
            (List.mem (Obs_trace.Flow_out 1) flows);
          checkb "flow terminates at hop 1" true
            (List.mem (Obs_trace.Flow_in 1) flows);
          let js = Obs_trace.to_chrome_json () in
          checkb "chrome export carries the s record" true
            (let rec has i =
               i >= 0
               && (String.sub js i 9 = "\"ph\":\"s\"," || has (i - 1))
             in
             has (String.length js - 9));
          checkb "chrome export carries the f record" true
            (let rec has i =
               i >= 0
               && (String.sub js i 9 = "\"ph\":\"f\"," || has (i - 1))
             in
             has (String.length js - 9))))

let suite =
  [
    ("request_trace.reconcile", reconcile_tests);
    ( "request_trace.flight_ring",
      [
        Alcotest.test_case "killed connection always sampled" `Quick
          test_killed_conn_sampled;
        Alcotest.test_case "fault outcomes bypass head sampling" `Quick
          test_fault_outcomes_always_sampled;
        Alcotest.test_case "close_conn flushes the pending reply's record"
          `Quick test_close_flushes_pending_reply;
        Alcotest.test_case "ring keeps exactly its capacity" `Quick
          test_ring_bound;
        Alcotest.test_case "disabled recorder records nothing" `Quick
          test_disabled_records_nothing;
      ] );
    ( "request_trace.gateway",
      [
        Alcotest.test_case "two-hop stitching reconciles" `Quick
          test_gateway_two_hop_reconciles;
        Alcotest.test_case "pinned two-hop golden timeline" `Quick
          test_gateway_golden_timeline;
        Alcotest.test_case "chrome lanes and flow arrows" `Quick
          test_chrome_lanes_and_flows;
      ] );
  ]
