(* Tests for the kit driver, the paper fixtures, and the code-reuse
   accounting. *)

let test name f = Alcotest.test_case name `Quick f

let mail_corba = Paper_fixtures.mail_corba
let mail_onc = Paper_fixtures.mail_onc

let mig_src = "subsystem dev 10;\nroutine poke(in x : int);"

let driver_tests =
  [
    test "every free IDL x presentation x backend combination compiles"
      (fun () ->
        let cases =
          [
            (Driver.Idl_corba, mail_corba); (Driver.Idl_onc, mail_onc);
          ]
        in
        List.iter
          (fun (idl, source) ->
            List.iter
              (fun pres ->
                List.iter
                  (fun backend ->
                    let files =
                      Driver.compile idl pres backend ~file:"t" ~source
                        ~interface:None
                    in
                    Alcotest.(check int) "three files" 3 (List.length files);
                    List.iter
                      (fun (_, contents) ->
                        Alcotest.(check bool) "nonempty" true
                          (String.length contents > 100))
                      files)
                  [
                    Driver.Back_iiop; Driver.Back_oncrpc; Driver.Back_mach3;
                    Driver.Back_fluke;
                  ])
              [ Driver.Pres_corba; Driver.Pres_corba_len; Driver.Pres_rpcgen;
                Driver.Pres_fluke ])
          cases);
    test "MIG input works through the conjoined path" (fun () ->
        let files =
          Driver.compile Driver.Idl_mig Driver.Pres_mig Driver.Back_mach3
            ~file:"dev.defs" ~source:mig_src ~interface:None
        in
        Alcotest.(check int) "three files" 3 (List.length files));
    test "MIG presentation rejects other IDLs" (fun () ->
        match
          Driver.present Driver.Idl_corba Driver.Pres_mig ~file:"t"
            ~source:mail_corba ~interface:None
        with
        | _ -> Alcotest.fail "expected a diagnostic"
        | exception Diag.Error _ -> ());
    test "interface listing and selection" (fun () ->
        let source = "interface A { void f(); }; interface B { void g(); };" in
        Alcotest.(check (list string))
          "list" [ "A"; "B" ]
          (Driver.interfaces Driver.Idl_corba ~file:"t" source);
        let pc =
          Driver.present Driver.Idl_corba Driver.Pres_corba ~file:"t" ~source
            ~interface:(Some "B")
        in
        Alcotest.(check string) "selected" "B" pc.Pres_c.pc_name;
        (* ambiguous without a selection *)
        match
          Driver.present Driver.Idl_corba Driver.Pres_corba ~file:"t" ~source
            ~interface:None
        with
        | _ -> Alcotest.fail "expected a diagnostic"
        | exception Diag.Error _ -> ());
    test "name parsing round trips" (fun () ->
        List.iter
          (fun n -> Alcotest.(check bool) n true (Driver.idl_of_string n <> None))
          Driver.idl_names;
        List.iter
          (fun n ->
            Alcotest.(check bool) n true
              (Driver.presentation_of_string n <> None))
          Driver.presentation_names;
        List.iter
          (fun n ->
            Alcotest.(check bool) n true (Driver.backend_of_string n <> None))
          Driver.backend_names);
  ]

let fixture_tests =
  [
    test "bench methods round trip through all engines on all encodings"
      (fun () ->
        List.iter
          (fun style ->
            let pc = Paper_fixtures.bench_presc style in
            List.iter
              (fun payload ->
                let spec =
                  Paper_fixtures.request_spec pc
                    ~op:(Paper_fixtures.op_of_payload payload)
                in
                let value = Paper_fixtures.payload payload ~bytes:2048 in
                List.iter
                  (fun enc ->
                    let encode =
                      Stub_opt.compile_encoder ~enc
                        ~mint:spec.Paper_fixtures.ms_mint
                        ~named:spec.Paper_fixtures.ms_named
                        spec.Paper_fixtures.ms_roots
                    in
                    let decode =
                      Stub_opt.compile_decoder ~enc
                        ~mint:spec.Paper_fixtures.ms_mint
                        ~named:spec.Paper_fixtures.ms_named
                        spec.Paper_fixtures.ms_droots
                    in
                    let b = Mbuf.create 4096 in
                    encode b [| value |];
                    let out = decode (Mbuf.reader b) in
                    Alcotest.(check bool)
                      (Printf.sprintf "%s roundtrip" enc.Encoding.name)
                      true
                      (Value.equal value out.(0)))
                  Encoding.all)
              [ `Ints; `Rects; `Dirents ])
          [ `Corba; `Rpcgen ]);
    test "directory entries encode near 256 bytes each" (fun () ->
        let pc = Paper_fixtures.bench_presc `Rpcgen in
        let spec = Paper_fixtures.request_spec pc ~op:"send_dirents" in
        let one = Paper_fixtures.payload `Dirents ~bytes:256 in
        let encode =
          Stub_opt.compile_encoder ~enc:Encoding.xdr
            ~mint:spec.Paper_fixtures.ms_mint
            ~named:spec.Paper_fixtures.ms_named spec.Paper_fixtures.ms_roots
        in
        let b = Mbuf.create 512 in
        encode b [| one |];
        let per_entry = Mbuf.pos b - 8 (* proc key + count *) in
        Alcotest.(check bool)
          (Printf.sprintf "%d in [240, 272]" per_entry)
          true
          (per_entry >= 240 && per_entry <= 272));
  ]

let reuse_tests =
  [
    test "code accounting finds all phases and components" (fun () ->
        let phases = Reuse.table1 () in
        Alcotest.(check (list string))
          "phases"
          [ "Front End"; "Pres. Gen."; "Back End" ]
          (List.map (fun p -> p.Reuse.phase_name) phases);
        List.iter
          (fun p ->
            Alcotest.(check bool) "base library is substantial" true
              (p.Reuse.base_lines > 300);
            List.iter
              (fun r ->
                Alcotest.(check bool)
                  (r.Reuse.component ^ " counted") true (r.Reuse.lines > 5);
                (* the paper's structural claim: components are small
                   fractions of their base libraries *)
                Alcotest.(check bool)
                  (r.Reuse.component ^ " below 50%")
                  true (r.Reuse.percent < 50.))
              p.Reuse.rows)
          phases);
    test "substantive counter ignores comments and blanks" (fun () ->
        let path = Filename.temp_file "reuse" ".ml" in
        let oc = open_out path in
        output_string oc
          "(* a comment *)\n\nlet x = 1\n(* multi\n   line *)\nlet y = \"(* not a comment *)\"\n";
        close_out oc;
        let n = Reuse.substantive_lines path in
        Sys.remove path;
        Alcotest.(check int) "two code lines" 2 n);
  ]

let suite =
  [
    ("driver:matrix", driver_tests);
    ("driver:fixtures", fixture_tests);
    ("driver:reuse", reuse_tests);
  ]
