(* Tests for the kit driver, the paper fixtures, and the code-reuse
   accounting. *)

let test name f = Alcotest.test_case name `Quick f

let mail_corba = Paper_fixtures.mail_corba
let mail_onc = Paper_fixtures.mail_onc

let mig_src = "subsystem dev 10;\nroutine poke(in x : int);"

let driver_tests =
  [
    test "every free IDL x presentation x backend combination compiles"
      (fun () ->
        let cases =
          [
            (Driver.Idl_corba, mail_corba); (Driver.Idl_onc, mail_onc);
          ]
        in
        List.iter
          (fun (idl, source) ->
            List.iter
              (fun pres ->
                List.iter
                  (fun backend ->
                    let files =
                      Driver.compile idl pres backend ~file:"t" ~source
                        ~interface:None
                    in
                    Alcotest.(check int) "three files" 3 (List.length files);
                    List.iter
                      (fun (_, contents) ->
                        Alcotest.(check bool) "nonempty" true
                          (String.length contents > 100))
                      files)
                  [
                    Driver.Back_iiop; Driver.Back_oncrpc; Driver.Back_mach3;
                    Driver.Back_fluke;
                  ])
              [ Driver.Pres_corba; Driver.Pres_corba_len; Driver.Pres_rpcgen;
                Driver.Pres_fluke ])
          cases);
    test "MIG input works through the conjoined path" (fun () ->
        let files =
          Driver.compile Driver.Idl_mig Driver.Pres_mig Driver.Back_mach3
            ~file:"dev.defs" ~source:mig_src ~interface:None
        in
        Alcotest.(check int) "three files" 3 (List.length files));
    test "MIG presentation rejects other IDLs" (fun () ->
        match
          Driver.present Driver.Idl_corba Driver.Pres_mig ~file:"t"
            ~source:mail_corba ~interface:None
        with
        | _ -> Alcotest.fail "expected a diagnostic"
        | exception Diag.Error _ -> ());
    test "interface listing and selection" (fun () ->
        let source = "interface A { void f(); }; interface B { void g(); };" in
        Alcotest.(check (list string))
          "list" [ "A"; "B" ]
          (Driver.interfaces Driver.Idl_corba ~file:"t" source);
        let pc =
          Driver.present Driver.Idl_corba Driver.Pres_corba ~file:"t" ~source
            ~interface:(Some "B")
        in
        Alcotest.(check string) "selected" "B" pc.Pres_c.pc_name;
        (* ambiguous without a selection *)
        match
          Driver.present Driver.Idl_corba Driver.Pres_corba ~file:"t" ~source
            ~interface:None
        with
        | _ -> Alcotest.fail "expected a diagnostic"
        | exception Diag.Error _ -> ());
    test "name parsing round trips" (fun () ->
        List.iter
          (fun n -> Alcotest.(check bool) n true (Driver.idl_of_string n <> None))
          Driver.idl_names;
        List.iter
          (fun n ->
            Alcotest.(check bool) n true
              (Driver.presentation_of_string n <> None))
          Driver.presentation_names;
        List.iter
          (fun n ->
            Alcotest.(check bool) n true (Driver.backend_of_string n <> None))
          Driver.backend_names);
  ]

let fixture_tests =
  [
    test "bench methods round trip through all engines on all encodings"
      (fun () ->
        List.iter
          (fun style ->
            let pc = Paper_fixtures.bench_presc style in
            List.iter
              (fun payload ->
                let spec =
                  Paper_fixtures.request_spec pc
                    ~op:(Paper_fixtures.op_of_payload payload)
                in
                let value = Paper_fixtures.payload payload ~bytes:2048 in
                List.iter
                  (fun enc ->
                    let encode =
                      Stub_opt.compile_encoder ~enc
                        ~mint:spec.Paper_fixtures.ms_mint
                        ~named:spec.Paper_fixtures.ms_named
                        spec.Paper_fixtures.ms_roots
                    in
                    let decode =
                      Stub_opt.compile_decoder ~enc
                        ~mint:spec.Paper_fixtures.ms_mint
                        ~named:spec.Paper_fixtures.ms_named
                        spec.Paper_fixtures.ms_droots
                    in
                    let b = Mbuf.create 4096 in
                    encode b [| value |];
                    let out = decode (Mbuf.reader b) in
                    Alcotest.(check bool)
                      (Printf.sprintf "%s roundtrip" enc.Encoding.name)
                      true
                      (Value.equal value out.(0)))
                  Encoding.all)
              [ `Ints; `Rects; `Dirents ])
          [ `Corba; `Rpcgen ]);
    test "directory entries encode near 256 bytes each" (fun () ->
        let pc = Paper_fixtures.bench_presc `Rpcgen in
        let spec = Paper_fixtures.request_spec pc ~op:"send_dirents" in
        let one = Paper_fixtures.payload `Dirents ~bytes:256 in
        let encode =
          Stub_opt.compile_encoder ~enc:Encoding.xdr
            ~mint:spec.Paper_fixtures.ms_mint
            ~named:spec.Paper_fixtures.ms_named spec.Paper_fixtures.ms_roots
        in
        let b = Mbuf.create 512 in
        encode b [| one |];
        let per_entry = Mbuf.pos b - 8 (* proc key + count *) in
        Alcotest.(check bool)
          (Printf.sprintf "%d in [240, 272]" per_entry)
          true
          (per_entry >= 240 && per_entry <= 272));
  ]

let reuse_tests =
  [
    test "code accounting finds all phases and components" (fun () ->
        let phases = Reuse.table1 () in
        Alcotest.(check (list string))
          "phases"
          [ "Front End"; "Pres. Gen."; "Back End" ]
          (List.map (fun p -> p.Reuse.phase_name) phases);
        List.iter
          (fun p ->
            Alcotest.(check bool) "base library is substantial" true
              (p.Reuse.base_lines > 300);
            List.iter
              (fun r ->
                Alcotest.(check bool)
                  (r.Reuse.component ^ " counted") true (r.Reuse.lines > 5);
                (* the paper's structural claim: components are small
                   fractions of their base libraries *)
                Alcotest.(check bool)
                  (r.Reuse.component ^ " below 50%")
                  true (r.Reuse.percent < 50.))
              p.Reuse.rows)
          phases);
    test "substantive counter ignores comments and blanks" (fun () ->
        let path = Filename.temp_file "reuse" ".ml" in
        let oc = open_out path in
        output_string oc
          "(* a comment *)\n\nlet x = 1\n(* multi\n   line *)\nlet y = \"(* not a comment *)\"\n";
        close_out oc;
        let n = Reuse.substantive_lines path in
        Sys.remove path;
        Alcotest.(check int) "two code lines" 2 n);
  ]

(* -- dump-plan: the CLI's plan and pass-trace rendering --------------- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let occurrences hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i acc =
    if i + nn > nh then acc
    else go (i + 1) (if String.sub hay i nn = needle then acc + 1 else acc)
  in
  if nn = 0 then 0 else go 0 0

(* Rendered under the injected fake clock, every wall time in a pass
   trace is a deterministic step count (two readings bracket each
   transform: exactly 1000ns = 1.0us per pass), so the golden below
   pins timing columns byte-for-byte — no real nanosecond ever lands in
   a golden. *)
let render ~op ?config mode =
  Obs.with_clock (Obs.fake_clock ()) (fun () ->
      Plan_dump.render ~idl:Driver.Idl_corba ~pres:Driver.Pres_rpcgen
        ~backend:Driver.Back_oncrpc ~interface:None ~op ~mode ?config
        ~file:"bench.idl" ~source:Paper_fixtures.bench_idl ())

let read_golden name =
  let path = Filename.concat "goldens" name in
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let dump_tests =
  [
    test "dump-plan renders one marshal plan per stub" (fun () ->
        let out = render ~op:None Plan_dump.Marshal in
        Alcotest.(check int) "three stubs" 3
          (occurrences out "=== marshal plan:"));
    test "dump-plan --decode renders the unmarshal plan" (fun () ->
        let out = render ~op:(Some "send_dirents") Plan_dump.Unmarshal in
        Alcotest.(check int) "one stub" 1
          (occurrences out "=== unmarshal plan:");
        Alcotest.(check int) "others filtered out" 0
          (occurrences out "send_ints"));
    test "dump-plan --trace-passes matches golden (send_dirents, oncrpc)"
      (fun () ->
        let out =
          render ~op:(Some "send_dirents") ~config:Opt_config.all
            Plan_dump.Trace
        in
        (* Golden regeneration aid (DESIGN.md §8): the output is
           deterministic under the fake clock, so dumping it *is* the
           new golden. *)
        (match Sys.getenv_opt "FLICK_REGEN_GOLDENS" with
        | Some path ->
            let oc = open_out path in
            output_string oc out;
            close_out oc
        | None -> ());
        Alcotest.(check string) "dump_trace_dirents_oncrpc.golden"
          (String.trim (read_golden "dump_trace_dirents_oncrpc.golden"))
          (String.trim out));
    test "dump-plan --trace-passes marks every pass verified" (fun () ->
        (* Trace mode forces the verifier on, whatever the config says *)
        let out =
          render ~op:(Some "send_rects") ~config:Opt_config.all
            Plan_dump.Trace
        in
        let n_passes =
          List.length Pass.encode_pass_names
          + List.length Pass.decode_pass_names
        in
        (* each side is traced twice: chunked and per-datum *)
        Alcotest.(check int) "one verified mark per pass and mode"
          (2 * n_passes)
          (occurrences out "verified");
        Alcotest.(check bool) "encode side traced" true
          (contains out "encode (chunked):");
        Alcotest.(check bool) "decode side traced" true
          (contains out "decode (per-datum):"));
    test "dump-plan --forward annotates ops with copy-elision provenance"
      (fun () ->
        (* oncrpc -> oncrpc: the dirents relay is pure copy propagation,
           so nothing may materialize and the string payloads borrow or
           blit *)
        let out =
          render ~op:(Some "send_dirents")
            (Plan_dump.Forward Driver.Back_oncrpc)
        in
        Alcotest.(check int) "one stub" 1
          (occurrences out "=== forward plan:");
        Alcotest.(check bool) "names both transports" true
          (contains out "(oncrpc -> oncrpc)");
        Alcotest.(check bool) "per-op provenance rendered" true
          (contains out "# blit" || contains out "# borrow");
        Alcotest.(check bool) "same-encoding relay never materializes" true
          (not (contains out "# fallback"));
        Alcotest.(check bool) "elision rollup present" true
          (contains out "elision: "));
    test "dump-plan --forward cross-encoding converts scalars in place"
      (fun () ->
        let out =
          render ~op:(Some "send_ints") (Plan_dump.Forward Driver.Back_fluke)
        in
        Alcotest.(check bool) "names both transports" true
          (contains out "(oncrpc -> fluke)");
        (* BE -> LE integers: the array relays as convert, not blit *)
        Alcotest.(check bool) "scalar conversion surfaces" true
          (contains out "# convert");
        Alcotest.(check bool) "no materialize fallback" true
          (not (contains out "# fallback")));
    test "dump-plan with an unknown --op is a diagnostic, not a crash"
      (fun () ->
        match render ~op:(Some "nosuch") Plan_dump.Marshal with
        | _ -> Alcotest.fail "expected a diagnostic"
        | exception Diag.Error d ->
            let msg = Diag.to_string d in
            Alcotest.(check bool) "names the missing op" true
              (contains msg "nosuch");
            Alcotest.(check bool) "lists the operations that exist" true
              (contains msg "send_ints"));
    test "dump-plan with an unknown pass name is a diagnostic" (fun () ->
        match
          render ~op:None ~config:(Opt_config.only [ "bogus" ])
            Plan_dump.Marshal
        with
        | _ -> Alcotest.fail "expected a diagnostic"
        | exception Diag.Error d ->
            Alcotest.(check bool) "names the bad pass" true
              (contains (Diag.to_string d) "bogus"));
  ]

let suite =
  [
    ("driver:matrix", driver_tests);
    ("driver:fixtures", fixture_tests);
    ("driver:dump-plan", dump_tests);
    ("driver:reuse", reuse_tests);
  ]
