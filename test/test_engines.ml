(* The central correctness properties of the reproduction:

   1. the optimized, rpcgen-style, and interpretive engines produce
      byte-identical messages for every type and value (so the
      benchmarks compare work-per-byte, never different formats);
   2. decode . encode = identity for every engine pair;
   3. storage analysis: when [max_size] is Some n, no encoding of any
      value exceeds n.

   Types, presentations, and values are generated randomly. *)

module G = QCheck.Gen

type case = {
  label : string;
  mint : Mint.t;
  named : (string * (Mint.idx * Pres.t)) list;
  idx : Mint.idx;
  pres : Pres.t;
}

(* -- random (MINT, PRES) pairs -------------------------------------- *)

let gen_case : case G.t =
 fun st ->
  let mint = Mint.create () in
  let buf = Buffer.create 64 in
  let rec gen depth : Mint.idx * Pres.t =
    let leaf () =
      match Random.State.int st 8 with
      | 0 ->
          Buffer.add_string buf "b";
          (Mint.bool_ mint, Pres.Direct)
      | 1 ->
          Buffer.add_string buf "c";
          (Mint.char8 mint, Pres.Direct)
      | 2 ->
          Buffer.add_string buf "i16";
          (Mint.int_ mint ~bits:16 ~signed:true, Pres.Direct)
      | 3 ->
          Buffer.add_string buf "u32";
          (Mint.int_ mint ~bits:32 ~signed:false, Pres.Direct)
      | 4 ->
          Buffer.add_string buf "i64";
          (Mint.int_ mint ~bits:64 ~signed:true, Pres.Direct)
      | 5 ->
          Buffer.add_string buf "f64";
          (Mint.float_ mint ~bits:64, Pres.Direct)
      | 6 ->
          Buffer.add_string buf "s";
          (Mint.string_ mint ~max_len:(Some 16), Pres.Terminated_string)
      | _ ->
          Buffer.add_string buf "i32";
          (Mint.int32 mint, Pres.Direct)
    in
    if depth >= 3 then leaf ()
    else
      match Random.State.int st 12 with
      | 0 | 1 | 2 | 3 -> leaf ()
      | 4 ->
          (* fixed array *)
          let n = 1 + Random.State.int st 5 in
          Buffer.add_string buf (Printf.sprintf "[%d]" n);
          let e, ep = gen (depth + 1) in
          (Mint.fixed_array mint ~elem:e ~len:n, Pres.Fixed_array ep)
      | 5 | 6 ->
          (* counted sequence *)
          Buffer.add_string buf "seq";
          let e, ep = gen (depth + 1) in
          ( Mint.array mint ~elem:e ~min_len:0 ~max_len:(Some 8),
            Pres.Counted_seq { len_field = "len"; buf_field = "val"; elem = ep } )
      | 7 ->
          Buffer.add_string buf "opt";
          let e, ep = gen (depth + 1) in
          (Mint.array mint ~elem:e ~min_len:0 ~max_len:(Some 1), Pres.Opt_ptr ep)
      | 8 | 9 | 10 ->
          let n = 1 + Random.State.int st 4 in
          Buffer.add_string buf (Printf.sprintf "struct%d(" n);
          let fields =
            List.init n (fun i ->
                let f, fp = gen (depth + 1) in
                (Printf.sprintf "f%d" i, f, fp))
          in
          Buffer.add_string buf ")";
          ( Mint.struct_ mint (List.map (fun (n', f, _) -> (n', f)) fields),
            Pres.Struct (List.map (fun (n', _, fp) -> (n', fp)) fields) )
      | _ ->
          let n = 1 + Random.State.int st 3 in
          let with_default = Random.State.bool st in
          Buffer.add_string buf (Printf.sprintf "union%d%s(" n (if with_default then "+d" else ""));
          let arms =
            List.init n (fun i ->
                let f, fp = gen (depth + 1) in
                (i, f, fp))
          in
          let default =
            if with_default then Some (gen (depth + 1)) else None
          in
          Buffer.add_string buf ")";
          let discrim = Mint.int32 mint in
          ( Mint.union mint ~discrim
              ~cases:
                (List.map
                   (fun (i, f, _) ->
                     { Mint.c_const = Mint.Cint (Int64.of_int (i * 3)); c_body = f })
                   arms)
              ~default:(Option.map (fun (d, _) -> d) default),
            Pres.Union
              {
                discrim_field = "_d";
                union_field = "_u";
                arms =
                  List.map (fun (i, _, fp) -> (Printf.sprintf "a%d" i, fp)) arms;
                default_arm = Option.map (fun (_, dp) -> ("dflt", dp)) default;
              } )
  in
  let idx, pres = gen 0 in
  { label = Buffer.contents buf; mint; named = []; idx; pres }

let arbitrary_case =
  QCheck.make ~print:(fun c -> c.label) gen_case

(* -- helpers --------------------------------------------------------- *)

let rng = Random.State.make [| 0x5eed |]

let encode_with compile enc (c : case) roots v =
  let encoder = compile ~enc ~mint:c.mint ~named:c.named roots in
  let buf = Mbuf.create 64 in
  encoder buf [| v |];
  Bytes.to_string (Mbuf.contents buf)

(* eta-expanded so [encode_with] sees the exact arrow it expects despite
   [?config] on the real entry point *)
let opt_encoder ~enc ~mint ~named roots =
  Stub_opt.compile_encoder ~enc ~mint ~named roots

let roots_of (c : case) =
  [
    Plan_compile.Rvalue
      (Mplan.Rparam { index = 0; name = "p"; deref = false }, c.idx, c.pres);
  ]

let droots_of (c : case) = [ Stub_opt.Dvalue (c.idx, c.pres) ]

let hex s =
  String.concat "" (List.map (Printf.sprintf "%02x") (List.map Char.code (List.of_seq (String.to_seq s))))

let equivalence_prop enc (c : case) =
  let v = Workload.random rng c.mint ~named:c.named c.idx c.pres in
  let opt = encode_with opt_encoder enc c (roots_of c) v in
  let naive =
    encode_with
      (Stub_naive.compile_encoder ~config:Stub_naive.default_config)
      enc c (roots_of c) v
  in
  let interp = encode_with Stub_interp.compile_encoder enc c (roots_of c) v in
  if opt <> naive then
    QCheck.Test.fail_reportf "opt/naive bytes differ on %s:@.%s@.%s" c.label
      (hex opt) (hex naive);
  if opt <> interp then
    QCheck.Test.fail_reportf "opt/interp bytes differ on %s:@.%s@.%s" c.label
      (hex opt) (hex interp);
  true

(* The peephole pass is invisible on the wire: executing the optimized
   plan yields the same bytes as the raw plan and as both reference
   engines.  (test_peephole.ml runs the heavyweight version of this at
   >= 1000 cases per paper encoding; this keeps the property visible
   next to its siblings.) *)
let peephole_prop enc (c : case) =
  let v = Workload.random rng c.mint ~named:c.named c.idx c.pres in
  let raw = Plan_compile.compile ~enc ~mint:c.mint ~named:c.named (roots_of c) in
  let encode plan =
    let buf = Mbuf.create 64 in
    Stub_opt.encoder_of_plan ~enc plan buf [| v |];
    Bytes.to_string (Mbuf.contents buf)
  in
  let before = encode raw in
  let after = encode (Peephole.optimize_plan raw) in
  let naive =
    encode_with
      (Stub_naive.compile_encoder ~config:Stub_naive.default_config)
      enc c (roots_of c) v
  in
  if before <> after then
    QCheck.Test.fail_reportf "peephole changed bytes on %s:@.%s@.%s" c.label
      (hex before) (hex after);
  if after <> naive then
    QCheck.Test.fail_reportf "peephole/naive bytes differ on %s:@.%s@.%s"
      c.label (hex after) (hex naive);
  true

let roundtrip_prop enc decoder_of (c : case) =
  let v = Workload.random rng c.mint ~named:c.named c.idx c.pres in
  let bytes = encode_with opt_encoder enc c (roots_of c) v in
  let decoder = decoder_of ~enc ~mint:c.mint ~named:c.named (droots_of c) in
  let r = Mbuf.reader_of_bytes (Bytes.of_string bytes) in
  match decoder r with
  | [| v' |] ->
      if not (Value.equal v v') then
        QCheck.Test.fail_reportf "roundtrip mismatch on %s:@.%a@.%a" c.label
          Value.pp v Value.pp v'
      else if Mbuf.remaining r <> 0 then
        QCheck.Test.fail_reportf "trailing bytes on %s" c.label
      else true
  | _ -> QCheck.Test.fail_reportf "wrong arity"

let bound_prop enc (c : case) =
  match Plan_compile.max_size ~enc ~mint:c.mint c.idx c.pres with
  | None -> true
  | Some bound ->
      let v = Workload.random rng c.mint ~named:c.named c.idx c.pres in
      let bytes = encode_with opt_encoder enc c (roots_of c) v in
      if String.length bytes > bound then
        QCheck.Test.fail_reportf
          "encoded %d bytes exceeds analyzed bound %d on %s"
          (String.length bytes) bound c.label
      else true

let qtest name prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:300 ~name arbitrary_case prop)

let property_tests =
  List.concat_map
    (fun enc ->
      let n = enc.Encoding.name in
      [
        qtest (n ^ ": three engines agree byte-for-byte") (equivalence_prop enc);
        qtest (n ^ ": peephole-optimized plans are wire-invisible")
          (peephole_prop enc);
        qtest (n ^ ": optimized decode inverts encode")
          (roundtrip_prop enc (fun ~enc ~mint ~named droots ->
             Stub_opt.compile_decoder ~enc ~mint ~named droots));
        qtest (n ^ ": naive decode inverts encode")
          (roundtrip_prop enc (Stub_naive.compile_decoder ~config:Stub_naive.default_config));
        qtest (n ^ ": storage bound holds") (bound_prop enc);
      ])
    Encoding.all

(* -- recursive types (named presentations) --------------------------- *)

let linked_list_case () =
  let mint = Mint.create () in
  let node = Mint.reserve mint in
  let next = Mint.array mint ~elem:node ~min_len:0 ~max_len:(Some 1) in
  Mint.set mint node (Mint.Struct [ ("v", Mint.int32 mint); ("next", next) ]);
  let node_pres =
    Pres.Struct [ ("v", Pres.Direct); ("next", Pres.Opt_ptr (Pres.Ref "node")) ]
  in
  {
    label = "linked-list";
    mint;
    named = [ ("node", (node, node_pres)) ];
    idx = node;
    pres = Pres.Ref "node";
  }

let rec list_value n =
  if n = 0 then Value.Vstruct [| Value.Vint 0; Value.Vopt None |]
  else Value.Vstruct [| Value.Vint n; Value.Vopt (Some (list_value (n - 1))) |]

let recursive_tests =
  List.map
    (fun enc ->
      Alcotest.test_case
        (enc.Encoding.name ^ ": recursive linked list across engines") `Quick
        (fun () ->
          let c = linked_list_case () in
          let v = list_value 17 in
          let opt =
    encode_with
      (fun ~enc ~mint ~named roots ->
        Stub_opt.compile_encoder ~enc ~mint ~named roots)
      enc c (roots_of c) v
  in
          let naive =
            encode_with
              (Stub_naive.compile_encoder ~config:Stub_naive.default_config)
              enc c (roots_of c) v
          in
          let interp =
            encode_with Stub_interp.compile_encoder enc c (roots_of c) v
          in
          Alcotest.(check string) "opt = naive" (hex opt) (hex naive);
          Alcotest.(check string) "opt = interp" (hex opt) (hex interp);
          let dec =
            Stub_opt.compile_decoder ~enc ~mint:c.mint ~named:c.named
              (droots_of c)
          in
          let out = dec (Mbuf.reader_of_bytes (Bytes.of_string opt)) in
          Alcotest.(check bool) "roundtrip" true (Value.equal v out.(0))))
    Encoding.all

(* -- message roots (operation discriminators) ------------------------ *)

let root_tests =
  [
    Alcotest.test_case "string-keyed request roots round trip" `Quick (fun () ->
        let c = gen_case (Random.State.make [| 1 |]) in
        let v = Workload.random rng c.mint ~named:c.named c.idx c.pres in
        let roots = Plan_compile.Rconst_str "read_dir" :: roots_of c in
        let droots = Stub_opt.Dconst_str "read_dir" :: droots_of c in
        List.iter
          (fun enc ->
            let opt = encode_with opt_encoder enc c roots v in
            let naive =
              encode_with
                (Stub_naive.compile_encoder ~config:Stub_naive.default_config)
                enc c roots v
            in
            Alcotest.(check string)
              (enc.Encoding.name ^ " bytes") (hex opt) (hex naive);
            let dec =
              Stub_opt.compile_decoder ~enc ~mint:c.mint ~named:c.named droots
            in
            let out = dec (Mbuf.reader_of_bytes (Bytes.of_string opt)) in
            Alcotest.(check bool)
              (enc.Encoding.name ^ " roundtrip")
              true
              (Value.equal v out.(0)))
          Encoding.all);
    Alcotest.test_case "integer-keyed request roots round trip" `Quick
      (fun () ->
        let c = gen_case (Random.State.make [| 2 |]) in
        let v = Workload.random rng c.mint ~named:c.named c.idx c.pres in
        let kind = Encoding.Kint { bits = 32; signed = false } in
        let roots = Plan_compile.Rconst_int (7L, kind) :: roots_of c in
        let droots = Stub_opt.Dconst_int (7L, kind) :: droots_of c in
        List.iter
          (fun enc ->
            let bytes = encode_with opt_encoder enc c roots v in
            let dec =
              Stub_opt.compile_decoder ~enc ~mint:c.mint ~named:c.named droots
            in
            let out = dec (Mbuf.reader_of_bytes (Bytes.of_string bytes)) in
            Alcotest.(check bool)
              (enc.Encoding.name ^ " roundtrip")
              true
              (Value.equal v out.(0));
            (* a wrong discriminator must be rejected *)
            let bad_droots = Stub_opt.Dconst_int (8L, kind) :: droots_of c in
            let bad_dec =
              Stub_opt.compile_decoder ~enc ~mint:c.mint ~named:c.named
                bad_droots
            in
            match bad_dec (Mbuf.reader_of_bytes (Bytes.of_string bytes)) with
            | _ -> Alcotest.fail "expected a decode error"
            | exception Codec.Decode_error _ -> ())
          Encoding.all);
  ]

(* -- failure injection ------------------------------------------------ *)

let failure_tests =
  [
    Alcotest.test_case "truncated buffers raise Short_buffer" `Quick (fun () ->
        let c = gen_case (Random.State.make [| 3 |]) in
        let v = Workload.random rng c.mint ~named:c.named c.idx c.pres in
        let enc = Encoding.cdr in
        let bytes = encode_with opt_encoder enc c (roots_of c) v in
        let dec =
          Stub_opt.compile_decoder ~enc ~mint:c.mint ~named:c.named (droots_of c)
        in
        let n = String.length bytes in
        (* every strict prefix must fail cleanly, never crash or succeed *)
        for cut = 0 to n - 1 do
          let r =
            Mbuf.reader_of_bytes (Bytes.of_string (String.sub bytes 0 cut))
          in
          match dec r with
          | _ -> ()
          (* some prefixes decode if the value has a shorter valid form;
             that is acceptable only when trailing data was an array tail *)
          | exception Mbuf.Short_buffer -> ()
          | exception Codec.Decode_error _ -> ()
        done);
    Alcotest.test_case "oversized sequence length is rejected" `Quick (fun () ->
        let mint = Mint.create () in
        let seq = Mint.array mint ~elem:(Mint.int32 mint) ~min_len:0 ~max_len:(Some 4) in
        let pres =
          Pres.Counted_seq { len_field = "len"; buf_field = "val"; elem = Pres.Direct }
        in
        let enc = Encoding.xdr in
        let buf = Mbuf.create 64 in
        Mbuf.put_i32 buf ~be:true 5 (* claims 5 > bound 4 *);
        for i = 1 to 5 do
          Mbuf.put_i32 buf ~be:true i
        done;
        let dec =
          Stub_opt.compile_decoder ~enc ~mint ~named:[]
            [ Stub_opt.Dvalue (seq, pres) ]
        in
        match dec (Mbuf.reader buf) with
        | _ -> Alcotest.fail "expected a decode error"
        | exception Codec.Decode_error _ -> ());
    Alcotest.test_case "invalid boolean is rejected" `Quick (fun () ->
        let mint = Mint.create () in
        let b = Mint.bool_ mint in
        let enc = Encoding.cdr in
        let buf = Mbuf.create 4 in
        Mbuf.put_u8 buf 7;
        let dec =
          Stub_opt.compile_decoder ~enc ~mint ~named:[]
            [ Stub_opt.Dvalue (b, Pres.Direct) ]
        in
        match dec (Mbuf.reader buf) with
        | _ -> Alcotest.fail "expected a decode error"
        | exception Codec.Decode_error _ -> ());
    Alcotest.test_case "invalid optional count is rejected" `Quick (fun () ->
        let mint = Mint.create () in
        let opt = Mint.array mint ~elem:(Mint.int32 mint) ~min_len:0 ~max_len:(Some 1) in
        let enc = Encoding.xdr in
        let buf = Mbuf.create 8 in
        Mbuf.put_i32 buf ~be:true 2;
        Mbuf.put_i32 buf ~be:true 42;
        let dec =
          Stub_opt.compile_decoder ~enc ~mint ~named:[]
            [ Stub_opt.Dvalue (opt, Pres.Opt_ptr Pres.Direct) ]
        in
        match dec (Mbuf.reader buf) with
        | _ -> Alcotest.fail "expected a decode error"
        | exception Codec.Decode_error _ -> ());
  ]

let suite =
  [
    ("engines:properties", property_tests);
    ("engines:recursive", recursive_tests);
    ("engines:roots", root_tests);
    ("engines:failures", failure_tests);
  ]
