(* Unit tests for the ONC RPC (.x) front end. *)

let parse = Onc_parser.parse ~file:"test.x"

let check_ok name src f =
  Alcotest.test_case name `Quick (fun () -> f (parse src))

let check_fails name src =
  Alcotest.test_case name `Quick (fun () ->
      match parse src with
      | _ -> Alcotest.failf "expected a parse error"
      | exception Diag.Error _ -> ())

(* The paper's introductory example in ONC RPC IDL. *)
let mail_x =
  "program Mail { version MailVers { void send(string) = 1; } = 1; } = \
   0x20000001;"

let structure_tests =
  [
    check_ok "paper Mail example" mail_x (fun spec ->
        match Aoi.interfaces spec with
        | [ (q, i) ] ->
            Alcotest.(check (list string)) "qname" [ "Mail"; "MailVers" ] q;
            Alcotest.(check bool)
              "program numbers" true
              (i.Aoi.i_program = Some (0x20000001L, 1L));
            let op = List.hd i.Aoi.i_ops in
            Alcotest.(check string) "proc" "send" op.Aoi.op_name;
            Alcotest.(check int64) "proc number" 1L op.Aoi.op_code;
            Alcotest.(check bool)
              "one string arg" true
              (List.map (fun p -> p.Aoi.p_type) op.Aoi.op_params
              = [ Aoi.String None ])
        | _ -> Alcotest.fail "expected one interface");
    check_ok "multiple versions"
      "program P { version V1 { void a(void) = 1; } = 1; version V2 { void \
       a(void) = 1; int b(int) = 2; } = 2; } = 77;"
      (fun spec ->
        let ifaces = Aoi.interfaces spec in
        Alcotest.(check int) "two interfaces" 2 (List.length ifaces);
        let _, v2 = List.nth ifaces 1 in
        Alcotest.(check bool) "v2 numbers" true (v2.Aoi.i_program = Some (77L, 2L));
        Alcotest.(check int) "v2 procs" 2 (List.length v2.Aoi.i_ops));
    check_ok "xdr struct"
      "struct point { int x; int y; }; struct rect { point min; point max; };"
      (fun spec ->
        ignore (Aoi_check.check spec);
        match spec.Aoi.s_defs with
        | [ Aoi.Dtype (_, Aoi.Struct_type _); Aoi.Dtype ("rect", Aoi.Struct_type fs) ]
          ->
            Alcotest.(check int) "two fields" 2 (List.length fs)
        | _ -> Alcotest.fail "unexpected AOI");
    check_ok "xdr declarators"
      "struct s { int fixed_arr[8]; int var_arr<16>; int unbounded<>; opaque \
       blob[4]; opaque data<100>; string name<32>; string any<>; int \
       *maybe; };"
      (fun spec ->
        match spec.Aoi.s_defs with
        | [ Aoi.Dtype (_, Aoi.Struct_type fields) ] ->
            let ty n =
              (List.find (fun f -> f.Aoi.f_name = n) fields).Aoi.f_type
            in
            Alcotest.(check bool) "fixed" true (ty "fixed_arr" = Aoi.Array (Aoi.Integer { bits = 32; signed = true }, [ 8 ]));
            Alcotest.(check bool) "var" true (ty "var_arr" = Aoi.Sequence (Aoi.Integer { bits = 32; signed = true }, Some 16));
            Alcotest.(check bool) "unbounded" true (ty "unbounded" = Aoi.Sequence (Aoi.Integer { bits = 32; signed = true }, None));
            Alcotest.(check bool) "opaque fixed" true (ty "blob" = Aoi.Array (Aoi.Octet, [ 4 ]));
            Alcotest.(check bool) "opaque var" true (ty "data" = Aoi.Sequence (Aoi.Octet, Some 100));
            Alcotest.(check bool) "string bounded" true (ty "name" = Aoi.String (Some 32));
            Alcotest.(check bool) "string unbounded" true (ty "any" = Aoi.String None);
            Alcotest.(check bool) "optional" true (ty "maybe" = Aoi.Optional (Aoi.Integer { bits = 32; signed = true }))
        | _ -> Alcotest.fail "unexpected AOI");
    check_ok "enum with explicit values and use as constant"
      "enum color { RED = 1, GREEN = 3, BLUE }; const N = GREEN; struct s { \
       int a[N]; };"
      (fun spec ->
        match spec.Aoi.s_defs with
        | [ Aoi.Dtype (_, Aoi.Enum_type vals); _; Aoi.Dtype (_, Aoi.Struct_type [ f ]) ]
          ->
            Alcotest.(check bool)
              "values" true
              (vals = [ ("RED", 1L); ("GREEN", 3L); ("BLUE", 4L) ]);
            Alcotest.(check bool) "array uses enum const" true
              (f.Aoi.f_type = Aoi.Array (Aoi.Integer { bits = 32; signed = true }, [ 3 ]))
        | _ -> Alcotest.fail "unexpected AOI");
    check_ok "union with void arms and default"
      "enum tag { A = 0, B = 1 }; union u switch (tag t) { case A: void; \
       case B: int n; default: opaque rest<>; };"
      (fun spec ->
        match List.rev spec.Aoi.s_defs with
        | Aoi.Dtype (_, Aoi.Union_type u) :: _ ->
            Alcotest.(check int) "cases" 2 (List.length u.Aoi.u_cases);
            let first = List.hd u.Aoi.u_cases in
            Alcotest.(check bool) "void arm" true
              (first.Aoi.c_field.Aoi.f_type = Aoi.Void);
            Alcotest.(check bool) "default" true (u.Aoi.u_default <> None)
        | _ -> Alcotest.fail "unexpected AOI");
    check_ok "linked list via optional"
      "struct node { int value; node *next; };" (fun spec ->
        let report = Aoi_check.check spec in
        Alcotest.(check bool)
          "self referential" true
          (Aoi_check.is_self_referential report [ "node" ]));
    check_ok "typedef forms"
      "typedef int counter; typedef string name<255>; typedef int vec[3]; \
       typedef int *opt;"
      (fun spec ->
        Alcotest.(check int) "four defs" 4 (List.length spec.Aoi.s_defs));
    check_ok "const expressions and hex"
      "const A = 1 << 4; const B = A + 0x10; struct s { int x[B]; };"
      (fun spec ->
        match List.rev spec.Aoi.s_defs with
        | Aoi.Dtype (_, Aoi.Struct_type [ f ]) :: _ ->
            Alcotest.(check bool) "dim 32" true
              (f.Aoi.f_type = Aoi.Array (Aoi.Integer { bits = 32; signed = true }, [ 32 ]))
        | _ -> Alcotest.fail "unexpected AOI");
    check_ok "multi-argument procedure (rpcgen extension)"
      "program P { version V { int add(int, int) = 1; } = 1; } = 5;"
      (fun spec ->
        let _, i = List.hd (Aoi.interfaces spec) in
        let op = List.hd i.Aoi.i_ops in
        Alcotest.(check (list string))
          "arg names" [ "arg1"; "arg2" ]
          (List.map (fun p -> p.Aoi.p_name) op.Aoi.op_params));
    check_ok "pass-through and preprocessor lines are ignored"
      "%#include \"foo.h\"\n#define X 1\nconst C = 2;" (fun spec ->
        Alcotest.(check int) "one def" 1 (List.length spec.Aoi.s_defs));
    check_ok "bool and hyper types"
      "struct s { bool flag; hyper big; unsigned hyper ubig; };" (fun spec ->
        match spec.Aoi.s_defs with
        | [ Aoi.Dtype (_, Aoi.Struct_type [ f1; f2; f3 ]) ] ->
            Alcotest.(check bool) "bool" true (f1.Aoi.f_type = Aoi.Boolean);
            Alcotest.(check bool) "hyper" true
              (f2.Aoi.f_type = Aoi.Integer { bits = 64; signed = true });
            Alcotest.(check bool) "uhyper" true
              (f3.Aoi.f_type = Aoi.Integer { bits = 64; signed = false })
        | _ -> Alcotest.fail "unexpected AOI");
  ]

let error_tests =
  [
    check_fails "quadruple unsupported" "struct s { quadruple q; };";
    check_fails "opaque without declarator" "struct s { opaque x; };";
    check_fails "string with fixed declarator" "struct s { string x[4]; };";
    check_fails "void struct member" "struct s { void; };";
    check_fails "typedef void" "typedef void;";
    check_fails "duplicate constant" "const A = 1; const A = 2;";
    check_fails "missing proc number"
      "program P { version V { void f(void); } = 1; } = 2;";
    check_fails "union with no cases" "union u switch (int d) { };";
    check_fails "garbage" "42;";
  ]

let checker_integration =
  [
    check_ok "full rpcgen-style file checks"
      "const MAXNAMELEN = 255;\n\
       typedef string nametype<MAXNAMELEN>;\n\
       typedef struct namenode *namelist;\n\
       struct namenode { nametype name; namelist next; };\n\
       union readdir_res switch (int errno) {\n\
       case 0: namelist list;\n\
       default: void;\n\
       };\n\
       program DIRPROG { version DIRVERS { readdir_res READDIR(nametype) = \
       1; } = 1; } = 0x20000076;"
      (fun spec ->
        let report = Aoi_check.check spec in
        Alcotest.(check bool)
          "namenode is self-referential" true
          (Aoi_check.is_self_referential report [ "namenode" ]))
  ]

let suite =
  [
    ("onc:structure", structure_tests);
    ("onc:errors", error_tests);
    ("onc:integration", checker_integration);
  ]
