(* MIG front end tests: parsing, restriction enforcement, presentation,
   and a loopback round trip over the Mach 3 back end. *)

let device_defs =
  "subsystem device 500;\n\
   type buf_t = array[*:4096] of char;\n\
   type regs_t = array[8] of int;\n\
   routine device_write(in offset : int; in data : buf_t);\n\
   routine device_regs(out regs : regs_t);\n\
   skip;\n\
   simpleroutine device_reset(in code : int);"

let test name f = Alcotest.test_case name `Quick f

let parse_tests =
  [
    test "parses the device subsystem" (fun () ->
        let spec = Mig_parser.parse ~file:"device.defs" device_defs in
        Alcotest.(check string) "name" "device" spec.Mig_parser.sub_name;
        Alcotest.(check int) "base" 500 (Int64.to_int spec.Mig_parser.sub_base);
        Alcotest.(check (list string))
          "routines"
          [ "device_write"; "device_regs"; "device_reset" ]
          (List.map (fun r -> r.Mig_parser.r_name) spec.Mig_parser.routines);
        (* ids: 500, 501, skip burns 502, reset gets 503 *)
        Alcotest.(check (list int))
          "msg ids" [ 500; 501; 503 ]
          (List.map
             (fun r -> Int64.to_int r.Mig_parser.r_msg_id)
             spec.Mig_parser.routines);
        let reset = List.nth spec.Mig_parser.routines 2 in
        Alcotest.(check bool) "simpleroutine is oneway" true
          reset.Mig_parser.r_oneway);
    test "rejects structured types" (fun () ->
        match
          Mig_parser.parse ~file:"bad.defs"
            "subsystem bad 1;\nroutine f(in x : array[4] of array[4] of int);"
        with
        | _ -> Alcotest.fail "expected a diagnostic"
        | exception Diag.Error _ -> ());
    test "rejects unknown type names" (fun () ->
        match
          Mig_parser.parse ~file:"bad.defs"
            "subsystem bad 1;\nroutine f(in x : mystery_t);"
        with
        | _ -> Alcotest.fail "expected a diagnostic"
        | exception Diag.Error _ -> ());
  ]

let presgen_tests =
  [
    test "presents routines keyed by message id" (fun () ->
        let spec = Mig_parser.parse ~file:"device.defs" device_defs in
        let pc = Presgen_mig.generate spec in
        Alcotest.(check bool) "style" true (pc.Pres_c.pc_style = Pres_c.Mig);
        let st = List.hd pc.Pres_c.pc_stubs in
        Alcotest.(check string) "stub" "device_write" st.Pres_c.os_client_name;
        Alcotest.(check string) "server" "device_write_server"
          st.Pres_c.os_server_name;
        Alcotest.(check bool) "key" true
          (st.Pres_c.os_request_case = Mint.Cint 500L);
        Alcotest.(check bool) "validates" true (Pres_c.validate pc = Ok ()));
  ]

let mig_main =
  {c|#include <stdio.h>
#include <string.h>
#include "device.h"

static char stored[4096];
static uint32_t stored_len;
static int resets;

void device_write_server(device _obj, int32_t offset, device_device_write_data_seq *data)
{
  (void)_obj;
  memcpy(stored + offset, data->data, data->count);
  stored_len = offset + data->count;
}

void device_regs_server(device _obj, int32_t (*regs)[8])
{
  int i;
  (void)_obj;
  for (i = 0; i < 8; i++) (*regs)[i] = i * 11;
}

void device_reset_server(device _obj, int32_t code)
{
  (void)_obj;
  resets += code;
}

int main(void)
{
  struct flick_object obj;
  device_device_write_data_seq data;
  int32_t regs[8];
  obj.dispatch = device_dispatch;
  obj.impl_state = &obj;
  obj.key = "device0";
  data.count = 5;
  data.data = "hello";
  device_write(&obj, 0, &data);
  if (stored_len != 5 || memcmp(stored, "hello", 5) != 0) return 1;
  device_regs(&obj, &regs);
  if (regs[7] != 77) return 2;
  device_reset(&obj, 9);
  device_reset(&obj, 1);
  if (resets != 10) return 3;
  printf("device ok\n");
  return 0;
}
|c}

let loopback_tests =
  [
    test "loopback: MIG device subsystem over Mach 3" (fun () ->
        let spec = Mig_parser.parse ~file:"device.defs" device_defs in
        let pc = Presgen_mig.generate spec in
        Test_backend.run_loopback "device-mach3" (Be_mach.generate pc) mig_main);
  ]

let suite =
  [
    ("mig:parse", parse_tests);
    ("mig:presgen", presgen_tests);
    ("mig:loopback", loopback_tests);
  ]
