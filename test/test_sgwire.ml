(* Differential tests for the scatter-gather wire path.

   Under a tiny borrow threshold every random string and byte run
   borrows, so the generated cases exercise segment splicing, the
   segmented reader (including pullup of data spanning a boundary), and
   truncation landing inside borrowed segments.  The properties:

   1. the SG message is byte-identical to the contiguous baseline and
      to the naive and interpretive engines;
   2. decoding straight over the segment list round-trips (optimized
      and naive decoders), consumes the whole message, and never
      flattens it;
   3. truncated readers fail cleanly with Short_buffer/Decode_error,
      never crash, and never poison the cached decoder. *)

module Q = QCheck

let with_sg ~on ~threshold f =
  let old_on = Mbuf.sg_enabled () and old_th = Mbuf.borrow_threshold () in
  Mbuf.set_sg_enabled on;
  Mbuf.set_borrow_threshold threshold;
  Fun.protect
    ~finally:(fun () ->
      Mbuf.set_sg_enabled old_on;
      Mbuf.set_borrow_threshold old_th)
    f

(* Encode under the SG regime, returning the live segmented writer. *)
let encode_sg enc (c : Test_engines.case) v =
  with_sg ~on:true ~threshold:3 (fun () ->
      let encoder =
        Stub_opt.compile_encoder ~enc ~mint:c.Test_engines.mint
          ~named:c.Test_engines.named (Test_engines.roots_of c)
      in
      let buf = Mbuf.create 64 in
      encoder buf [| v |];
      buf)

let encode_contig compile enc (c : Test_engines.case) v =
  with_sg ~on:false ~threshold:3 (fun () ->
      Test_engines.encode_with compile enc c (Test_engines.roots_of c) v)

let sg_prop enc (c : Test_engines.case) =
  let v =
    Workload.random Test_engines.rng c.Test_engines.mint
      ~named:c.Test_engines.named c.Test_engines.idx c.Test_engines.pres
  in
  let buf = encode_sg enc c v in
  let segs = Mbuf.segment_count buf in
  let droots = Test_engines.droots_of c in
  let dec =
    Stub_opt.compile_decoder ~enc ~mint:c.Test_engines.mint
      ~named:c.Test_engines.named droots
  in
  let ndec =
    Stub_naive.compile_decoder ~config:Stub_naive.default_config ~enc
      ~mint:c.Test_engines.mint ~named:c.Test_engines.named droots
  in
  (* 1. decode straight over the segment list, before anything flattens *)
  let check_roundtrip name d =
    let r = Mbuf.reader buf in
    match d r with
    | [| v' |] ->
        if not (Value.equal v v') then
          Q.Test.fail_reportf
            "%s segmented roundtrip mismatch on %s (%d segments):@.%a@.%a" name
            c.Test_engines.label segs Value.pp v Value.pp v';
        if Mbuf.remaining r <> 0 then
          Q.Test.fail_reportf "%s left trailing bytes on %s" name
            c.Test_engines.label
    | _ -> Q.Test.fail_reportf "wrong arity on %s" c.Test_engines.label
  in
  check_roundtrip "opt" dec;
  check_roundtrip "naive" ndec;
  if (Mbuf.stats buf).Mbuf.flattens <> 0 then
    Q.Test.fail_reportf "segmented decode flattened %s" c.Test_engines.label;
  (* 2. truncation fails cleanly (a strict prefix may still be a valid
        shorter form, but must never crash), including cuts landing
        inside a borrowed segment *)
  let n = Mbuf.pos buf in
  List.iter
    (fun cut ->
      if cut >= 0 && cut < n then
        match dec (Mbuf.reader ~len:cut buf) with
        | _ -> ()
        | exception Mbuf.Short_buffer -> ()
        | exception Codec.Decode_error _ -> ())
    [ 0; 1; n / 2; n - 1 ];
  (* ... and the cached decoder still works afterwards *)
  check_roundtrip "opt-after-truncation" dec;
  (* 3. byte equality with the contiguous baseline and both reference
        engines (flattening the SG message is the last step: the checks
        above must run on the live segment list) *)
  let sg_bytes = Bytes.to_string (Mbuf.contents buf) in
  let contig =
    encode_contig
      (fun ~enc ~mint ~named roots ->
        Stub_opt.compile_encoder ~enc ~mint ~named roots)
      enc c v
  in
  let naive =
    encode_contig
      (Stub_naive.compile_encoder ~config:Stub_naive.default_config)
      enc c v
  in
  let interp = encode_contig Stub_interp.compile_encoder enc c v in
  if sg_bytes <> contig then
    Q.Test.fail_reportf "SG/contiguous bytes differ on %s (%d segments):@.%s@.%s"
      c.Test_engines.label segs (Test_engines.hex sg_bytes)
      (Test_engines.hex contig);
  if sg_bytes <> naive then
    Q.Test.fail_reportf "SG/naive bytes differ on %s:@.%s@.%s"
      c.Test_engines.label (Test_engines.hex sg_bytes) (Test_engines.hex naive);
  if sg_bytes <> interp then
    Q.Test.fail_reportf "SG/interp bytes differ on %s:@.%s@.%s"
      c.Test_engines.label (Test_engines.hex sg_bytes)
      (Test_engines.hex interp);
  true

let qtest name prop =
  QCheck_alcotest.to_alcotest
    (Q.Test.make ~count:1000 ~name Test_engines.arbitrary_case prop)

let suite =
  [
    ( "sgwire:differential",
      List.map
        (fun enc ->
          qtest
            (enc.Encoding.name
           ^ ": SG wire is byte-identical and decodes in place")
            (sg_prop enc))
        [ Encoding.xdr; Encoding.cdr; Encoding.mach3 ] );
  ]
