(* Unit tests for the C abstract syntax tree printer. *)

open Cast

let test name f = Alcotest.test_case name `Quick f

let check_ctype name ty decl expected =
  test name (fun () ->
      Alcotest.(check string) name expected (Cast_pp.ctype ty decl))

let check_expr name e expected =
  test name (fun () ->
      Alcotest.(check string) name expected (Cast_pp.expr e))

let declarator_tests =
  [
    check_ctype "plain int" int32_t "x" "int32_t x";
    check_ctype "pointer" (Tptr Tchar) "s" "char *s";
    check_ctype "pointer to pointer" (Tptr (Tptr Tchar)) "pp" "char **pp";
    check_ctype "array" (Tarray (int32_t, Some 4)) "v" "int32_t v[4]";
    check_ctype "array of pointers" (Tarray (Tptr Tchar, Some 2)) "v"
      "char *v[2]";
    check_ctype "pointer to array" (Tptr (Tarray (int32_t, Some 8))) "p"
      "int32_t (*p)[8]";
    check_ctype "struct reference" (Tstruct_ref "foo") "f" "struct foo f";
    check_ctype "const char pointer" (Tconst_ptr Tchar) "s" "const char *s";
    check_ctype "function pointer"
      (Tfunc_ptr { ret = Tvoid; params = [ int32_t; Tptr Tchar ] })
      "cb" "void (*cb)(int32_t, char *)";
    check_ctype "abstract declarator" (Tptr Tvoid) "" "void *";
    check_ctype "2d array" (Tarray (Tarray (Tchar, Some 3), Some 2)) "m"
      "char m[2][3]";
  ]

let expr_tests =
  [
    check_expr "precedence: mul over add"
      (Ebinop (Mul, Ebinop (Add, e0 "a", e0 "b"), e0 "c"))
      "(a + b) * c";
    check_expr "no spurious parens"
      (Ebinop (Add, Ebinop (Mul, e0 "a", e0 "b"), e0 "c"))
      "a * b + c";
    check_expr "left associativity"
      (Ebinop (Sub, Ebinop (Sub, e0 "a", e0 "b"), e0 "c"))
      "a - b - c";
    check_expr "right operand parens"
      (Ebinop (Sub, e0 "a", Ebinop (Sub, e0 "b", e0 "c")))
      "a - (b - c)";
    check_expr "shift inside compare"
      (Ebinop (Lt, Ebinop (Shl, e0 "a", num 2), e0 "b"))
      "a << 2 < b";
    check_expr "deref and field"
      (Efield (Eunop (Deref, e0 "p"), "x"))
      "(*p).x";
    check_expr "arrow" (Earrow (e0 "p", "x")) "p->x";
    check_expr "index of call"
      (Eindex (call "f" [ e0 "a" ], num 0))
      "f(a)[0]";
    check_expr "cast binds tighter than add"
      (Ebinop (Add, Ecast (uint32_t, e0 "x"), num 1))
      "(uint32_t)x + 1";
    check_expr "conditional"
      (Econd (e0 "c", e0 "a", e0 "b"))
      "c ? a : b";
    check_expr "assignment in expression"
      (Eassign (e0 "x", Ebinop (Add, e0 "x", num 1)))
      "x = x + 1";
    check_expr "string literal escaped"
      (Estr "a\"b\n")
      "\"a\\\"b\\n\"";
    check_expr "char literal" (Echar '\n') "'\\n'";
    check_expr "sizeof type" (Esizeof (Tstruct_ref "s")) "sizeof(struct s)";
    check_expr "sizeof expression"
      (Esizeof_expr (Eunop (Deref, e0 "p")))
      "sizeof(*p)";
    check_expr "int64 literal gets LL suffix"
      (Eint 0x2_0000_0001L) "8589934593LL";
  ]

let stmt_tests =
  [
    test "if/else and loops print with breaks in switches" (fun () ->
        let s =
          Sswitch
            ( e0 "x",
              [
                { sc_labels = [ num 1 ]; sc_body = [ Sexpr (call "f" []) ] };
                { sc_labels = []; sc_body = [ Sreturn None ] };
              ] )
        in
        let printed = Cast_pp.stmt s in
        let contains needle =
          let nl = String.length needle and hl = String.length printed in
          let rec go i = i + nl <= hl && (String.sub printed i nl = needle || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool) "break appended" true (contains "break;");
        Alcotest.(check bool) "no break after return" false
          (contains "return;\n  break"));
    test "guarded header compiles stand-alone" (fun () ->
        let header =
          Cast_pp.guard "T_H"
            [
              Dinclude "stdint.h";
              Dtypedef ("pair", Tstruct_ref "pair");
              Dstruct ("pair", [ ("x", int32_t); ("y", int32_t) ]);
              Denum_decl ("color", [ ("RED", 0L); ("GREEN", 1L) ]);
              Dfun_proto (Public, "f", Tvoid, [ ("p", Tptr (Tnamed "pair")) ]);
            ]
        in
        let dir = Filename.get_temp_dir_name () in
        let path = Filename.concat dir "flick_cast_test.h" in
        let cpath = Filename.concat dir "flick_cast_test.c" in
        let oc = open_out path in
        output_string oc header;
        close_out oc;
        let oc = open_out cpath in
        output_string oc "#include \"flick_cast_test.h\"\nint main(void){return 0;}\n";
        close_out oc;
        let rc =
          Sys.command
            (Printf.sprintf "cd %s && gcc -std=c99 -Wall -Werror -c %s -o /dev/null 2>/dev/null"
               (Filename.quote dir) "flick_cast_test.c")
        in
        Alcotest.(check int) "gcc accepts" 0 rc);
  ]

let suite =
  [
    ("cast:declarators", declarator_tests);
    ("cast:expressions", expr_tests);
    ("cast:statements", stmt_tests);
  ]
