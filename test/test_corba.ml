(* Unit tests for the CORBA IDL front end. *)

let parse = Corba_parser.parse ~file:"test.idl"

let check_ok name src f =
  Alcotest.test_case name `Quick (fun () -> f (parse src))

let check_fails name src =
  Alcotest.test_case name `Quick (fun () ->
      match parse src with
      | _ -> Alcotest.failf "expected a parse error"
      | exception Diag.Error _ -> ())

(* The paper's introductory example. *)
let mail_idl = "interface Mail { void send(in string msg); };"

let find_interface spec name =
  match
    List.find_opt (fun (q, _) -> q = [ name ]) (Aoi.interfaces spec)
  with
  | Some (_, i) -> i
  | None -> Alcotest.failf "interface %s not found" name

let structure_tests =
  [
    check_ok "paper Mail example" mail_idl (fun spec ->
        let i = find_interface spec "Mail" in
        Alcotest.(check int) "one op" 1 (List.length i.Aoi.i_ops);
        let op = List.hd i.Aoi.i_ops in
        Alcotest.(check string) "op name" "send" op.Aoi.op_name;
        Alcotest.(check bool) "returns void" true (op.Aoi.op_return = Aoi.Void);
        match op.Aoi.op_params with
        | [ p ] ->
            Alcotest.(check string) "param name" "msg" p.Aoi.p_name;
            Alcotest.(check bool) "param dir" true (p.Aoi.p_dir = Aoi.In);
            Alcotest.(check bool) "param type" true (p.Aoi.p_type = Aoi.String None)
        | _ -> Alcotest.fail "expected one parameter");
    check_ok "operation codes are assigned in order"
      "interface I { void a(); void b(); long c(); };" (fun spec ->
        let i = find_interface spec "I" in
        Alcotest.(check (list int))
          "codes" [ 0; 1; 2 ]
          (List.map (fun o -> Int64.to_int o.Aoi.op_code) i.Aoi.i_ops));
    check_ok "module nesting"
      "module M { module N { interface I { void f(); }; }; };" (fun spec ->
        match Aoi.interfaces spec with
        | [ (q, _) ] ->
            Alcotest.(check (list string)) "qname" [ "M"; "N"; "I" ] q
        | _ -> Alcotest.fail "expected exactly one interface");
    check_ok "typedef with array declarator" "typedef long vec10[10];"
      (fun spec ->
        match spec.Aoi.s_defs with
        | [ Aoi.Dtype ("vec10", Aoi.Array (Aoi.Integer { bits = 32; signed = true }, [ 10 ])) ]
          ->
            ()
        | _ -> Alcotest.fail "unexpected AOI for typedef");
    check_ok "multi declarator typedef" "typedef short a, b[2];" (fun spec ->
        Alcotest.(check int) "two defs" 2 (List.length spec.Aoi.s_defs));
    check_ok "struct with several members"
      "struct Point { long x, y; }; struct Rect { Point min, max; };"
      (fun spec ->
        match spec.Aoi.s_defs with
        | [ Aoi.Dtype ("Point", Aoi.Struct_type ps); Aoi.Dtype ("Rect", Aoi.Struct_type rs) ]
          ->
            Alcotest.(check (list string))
              "point members" [ "x"; "y" ]
              (List.map (fun f -> f.Aoi.f_name) ps);
            Alcotest.(check (list string))
              "rect members" [ "min"; "max" ]
              (List.map (fun f -> f.Aoi.f_name) rs)
        | _ -> Alcotest.fail "unexpected AOI for structs");
    check_ok "union with cases and default"
      "union U switch (long) { case 1: long a; case 2: case 3: string b; \
       default: octet c; };"
      (fun spec ->
        match spec.Aoi.s_defs with
        | [ Aoi.Dtype ("U", Aoi.Union_type u) ] ->
            Alcotest.(check int) "cases" 2 (List.length u.Aoi.u_cases);
            Alcotest.(check int)
              "labels of second case" 2
              (List.length (List.nth u.Aoi.u_cases 1).Aoi.c_labels);
            Alcotest.(check bool) "has default" true (u.Aoi.u_default <> None)
        | _ -> Alcotest.fail "unexpected AOI for union");
    check_ok "enum introduces enumerator constants"
      "enum Color { RED, GREEN, BLUE }; const long c = BLUE;" (fun spec ->
        match spec.Aoi.s_defs with
        | [ Aoi.Dtype ("Color", Aoi.Enum_type names); Aoi.Dconst ("c", _, v) ] ->
            Alcotest.(check (list string)) "names" [ "RED"; "GREEN"; "BLUE" ]
              (List.map fst names);
            Alcotest.(check bool) "const value" true (v = Aoi.Const_enum [ "BLUE" ])
        | _ -> Alcotest.fail "unexpected AOI for enum");
    check_ok "interface inheritance"
      "interface A { void f(); }; interface B : A { void g(); };" (fun spec ->
        let b = find_interface spec "B" in
        Alcotest.(check bool) "parent" true (b.Aoi.i_parents = [ [ "A" ] ]));
    check_ok "attributes"
      "interface I { attribute long x; readonly attribute string name; };"
      (fun spec ->
        let i = find_interface spec "I" in
        match i.Aoi.i_attrs with
        | [ a1; a2 ] ->
            Alcotest.(check bool) "x writable" false a1.Aoi.at_readonly;
            Alcotest.(check bool) "name readonly" true a2.Aoi.at_readonly
        | _ -> Alcotest.fail "expected two attributes");
    check_ok "attribute operations derivation"
      "interface I { void f(); attribute long x; readonly attribute long y; };"
      (fun spec ->
        let i = find_interface spec "I" in
        let derived = Aoi.attribute_operations i in
        Alcotest.(check (list string))
          "derived ops" [ "_get_x"; "_set_x"; "_get_y" ]
          (List.map (fun o -> o.Aoi.op_name) derived);
        Alcotest.(check (list int))
          "derived codes continue after ops" [ 1; 2; 3 ]
          (List.map (fun o -> Int64.to_int o.Aoi.op_code) derived));
    check_ok "oneway operation"
      "interface I { oneway void ping(in long x); };" (fun spec ->
        let i = find_interface spec "I" in
        Alcotest.(check bool) "oneway" true (List.hd i.Aoi.i_ops).Aoi.op_oneway);
    check_ok "raises clause"
      "exception Bad { long code; }; interface I { void f() raises (Bad); };"
      (fun spec ->
        let i = find_interface spec "I" in
        Alcotest.(check bool)
          "raises" true
          ((List.hd i.Aoi.i_ops).Aoi.op_raises = [ [ "Bad" ] ]));
    check_ok "exceptions at top level and in interface"
      "exception E1 { long a; }; interface I { exception E2 { string b; }; \
       void f() raises (E1, E2); };"
      (fun spec ->
        let report = Aoi_check.check spec in
        Alcotest.(check int) "two exceptions" 2 report.Aoi_check.exception_count);
    check_ok "forward declaration is accepted"
      "interface I; interface I { void f(); };" (fun spec ->
        Alcotest.(check int) "one interface" 1 (List.length (Aoi.interfaces spec)));
    check_ok "sequence types"
      "typedef sequence<long> ls; typedef sequence<sequence<octet>, 8> nested;"
      (fun spec ->
        match spec.Aoi.s_defs with
        | [ Aoi.Dtype (_, Aoi.Sequence (Aoi.Integer _, None));
            Aoi.Dtype (_, Aoi.Sequence (Aoi.Sequence (Aoi.Octet, None), Some 8)) ] ->
            ()
        | _ -> Alcotest.fail "unexpected AOI for sequences");
    check_ok "bounded string" "typedef string<80> line;" (fun spec ->
        match spec.Aoi.s_defs with
        | [ Aoi.Dtype (_, Aoi.String (Some 80)) ] -> ()
        | _ -> Alcotest.fail "unexpected AOI");
    check_ok "inline struct member is hoisted"
      "struct Outer { struct Inner { long x; } i; long y; };" (fun spec ->
        Alcotest.(check int) "two defs" 2 (List.length spec.Aoi.s_defs);
        (* the hoisted definition must be resolvable *)
        ignore (Aoi_check.check spec));
    check_ok "unsigned integer family"
      "struct S { unsigned short a; unsigned long b; unsigned long long c; \
       long long d; };"
      (fun spec ->
        match spec.Aoi.s_defs with
        | [ Aoi.Dtype (_, Aoi.Struct_type fields) ] ->
            let bits =
              List.map
                (fun f ->
                  match f.Aoi.f_type with
                  | Aoi.Integer { bits; signed } -> (bits, signed)
                  | _ -> Alcotest.fail "not an integer")
                fields
            in
            Alcotest.(check bool)
              "widths" true
              (bits = [ (16, false); (32, false); (64, false); (64, true) ])
        | _ -> Alcotest.fail "unexpected AOI");
  ]

let const_tests =
  [
    check_ok "constant arithmetic"
      "const long a = 2 + 3 * 4; const long b = (2 + 3) * 4; const long c = \
       1 << 10; const long d = 0xff & 0x0f; const long e = -5; const long f \
       = ~0; const long g = 7 % 3; const long h = a + b;"
      (fun spec ->
        let value name =
          match
            List.find_opt
              (fun d -> Aoi.def_name d = name)
              spec.Aoi.s_defs
          with
          | Some (Aoi.Dconst (_, _, Aoi.Const_int n)) -> n
          | _ -> Alcotest.failf "const %s not found" name
        in
        Alcotest.(check int64) "a" 14L (value "a");
        Alcotest.(check int64) "b" 20L (value "b");
        Alcotest.(check int64) "c" 1024L (value "c");
        Alcotest.(check int64) "d" 15L (value "d");
        Alcotest.(check int64) "e" (-5L) (value "e");
        Alcotest.(check int64) "f" (-1L) (value "f");
        Alcotest.(check int64) "g" 1L (value "g");
        Alcotest.(check int64) "h" 34L (value "h"));
    check_ok "const used as bound"
      "const long N = 4; typedef long v[N * 2]; typedef string<N> s;"
      (fun spec ->
        match spec.Aoi.s_defs with
        | [ _; Aoi.Dtype (_, Aoi.Array (_, [ 8 ])); Aoi.Dtype (_, Aoi.String (Some 4)) ]
          ->
            ()
        | _ -> Alcotest.fail "unexpected AOI");
    check_ok "boolean and char consts"
      "const boolean t = TRUE; const char nl = '\\n';" (fun spec ->
        match spec.Aoi.s_defs with
        | [ Aoi.Dconst (_, _, Aoi.Const_bool true);
            Aoi.Dconst (_, _, Aoi.Const_char '\n') ] ->
            ()
        | _ -> Alcotest.fail "unexpected AOI");
    check_fails "division by zero" "const long x = 1 / 0;";
    check_fails "unknown constant" "const long x = missing;";
    check_fails "zero array dimension" "typedef long v[0];";
  ]

let error_tests =
  [
    check_fails "missing semicolon" "interface I { void f() }";
    check_fails "bad keyword" "interfaceX I { };";
    check_fails "any is unsupported" "typedef any x;";
    check_fails "wstring is unsupported" "typedef wstring x;";
    check_fails "missing param direction" "interface I { void f(long x); };";
    check_fails "unterminated interface" "interface I { void f();";
    check_fails "union without cases" "union U switch (long) { };";
    check_fails "garbage at top level" "42;";
  ]

let check_sema_fails name src =
  Alcotest.test_case name `Quick (fun () ->
      match Aoi_check.check (parse src) with
      | _ -> Alcotest.failf "expected a semantic error"
      | exception Diag.Error _ -> ())

let check_tests =
  [
    check_ok "checker accepts the directory interface"
      "struct stat { long dev; long ino; }; struct dirent { string name; \
       stat info; }; typedef sequence<dirent> dirents; interface Dir { \
       dirents list_dir(in string path); };"
      (fun spec -> ignore (Aoi_check.check spec));
    check_sema_fails "checker rejects unresolved names"
      "interface I { void f(in NoSuchType x); };";
    Alcotest.test_case "checker rejects direct recursion" `Quick (fun () ->
        let spec =
          {
            Aoi.s_file = "t";
            s_defs =
              [
                Aoi.Dtype
                  ( "A",
                    Aoi.Struct_type
                      [ { Aoi.f_name = "a"; f_type = Aoi.Named [ "A" ] } ] );
              ];
          }
        in
        match Aoi_check.check spec with
        | _ -> Alcotest.fail "expected recursion error"
        | exception Diag.Error _ -> ());
    Alcotest.test_case "checker allows recursion through sequence" `Quick
      (fun () ->
        let spec =
          {
            Aoi.s_file = "t";
            s_defs =
              [
                Aoi.Dtype
                  ( "Tree",
                    Aoi.Struct_type
                      [
                        { Aoi.f_name = "value"; f_type = Aoi.Integer { bits = 32; signed = true } };
                        {
                          Aoi.f_name = "kids";
                          f_type = Aoi.Sequence (Aoi.Named [ "Tree" ], None);
                        };
                      ] );
              ];
          }
        in
        let report = Aoi_check.check spec in
        Alcotest.(check bool)
          "self referential" true
          (Aoi_check.is_self_referential report [ "Tree" ]));
    Alcotest.test_case "checker allows recursion through optional" `Quick
      (fun () ->
        let spec =
          {
            Aoi.s_file = "t";
            s_defs =
              [
                Aoi.Dtype
                  ( "List",
                    Aoi.Struct_type
                      [
                        { Aoi.f_name = "head"; f_type = Aoi.Integer { bits = 32; signed = true } };
                        { Aoi.f_name = "tail"; f_type = Aoi.Optional (Aoi.Named [ "List" ]) };
                      ] );
              ];
          }
        in
        let report = Aoi_check.check spec in
        Alcotest.(check bool)
          "self referential" true
          (Aoi_check.is_self_referential report [ "List" ]));
    check_sema_fails "duplicate definitions rejected" "typedef long x; typedef short x;";
    check_sema_fails "duplicate struct members rejected via checker"
      "struct S { long a; short a; };";
    Alcotest.test_case "oneway with out param rejected" `Quick (fun () ->
        let src = "interface I { oneway void f(out long x); };" in
        match Aoi_check.check (parse src) with
        | _ -> Alcotest.fail "expected error"
        | exception Diag.Error _ -> ());
  ]

let pp_roundtrip =
  Alcotest.test_case "pretty printed AOI reparses" `Quick (fun () ->
      let src =
        "module M { struct Point { long x, y; }; enum Color { RED, GREEN }; \
         union U switch (long) { case 1: Point p; default: Color c; }; \
         exception Oops { string why; }; interface I { attribute long a; \
         void f(in Point p, out U u) raises (Oops); }; };"
      in
      let spec = parse src in
      let printed = Aoi_pp.spec_to_string spec in
      let spec2 =
        try Corba_parser.parse ~file:"printed.idl" printed
        with Diag.Error d ->
          Alcotest.failf "reparse failed: %s@.--- printed ---@.%s"
            (Diag.to_string d) printed
      in
      ignore (Aoi_check.check spec2);
      Alcotest.(check int)
        "same number of interfaces"
        (List.length (Aoi.interfaces spec))
        (List.length (Aoi.interfaces spec2)))

let suite =
  [
    ("corba:structure", structure_tests);
    ("corba:consts", const_tests);
    ("corba:errors", error_tests);
    ("corba:check", check_tests);
    ("corba:roundtrip", [ pp_roundtrip ]);
  ]
