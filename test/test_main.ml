let () =
  Alcotest.run "flick"
    (Test_lexer.suite @ Test_corba.suite @ Test_onc.suite @ Test_presgen.suite @ Test_engines.suite @ Test_backend.suite @ Test_mig.suite @ Test_len_pres.suite @ Test_cast.suite @ Test_wire.suite @ Test_sgwire.suite @ Test_plan.suite @ Test_decplan.suite @ Test_peephole.suite @ Test_passes.suite @ Test_obs.suite @ Test_sim.suite @ Test_serve.suite @ Test_request_trace.suite @ Test_stage.suite @ Test_varhead.suite @ Test_forward.suite @ Test_driver.suite @ Test_c_equiv.suite @ Test_aoi_fuzz.suite)
