(* Unit tests for the shared IDL lexer. *)

module T = Idl_token

let toks src = List.map fst (Idl_lexer.tokens_of_string src)

let token = Alcotest.testable (fun ppf t -> T.pp ppf t) T.equal

let check_tokens name src expected =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check (list token)) name expected (toks src))

let check_fails name src =
  Alcotest.test_case name `Quick (fun () ->
      match toks src with
      | _ -> Alcotest.failf "expected a lexer error for %S" src
      | exception Diag.Error _ -> ())

let basic_tests =
  [
    check_tokens "idents and punctuation" "interface Mail { };"
      [ T.Ident "interface"; T.Ident "Mail"; T.Lbrace; T.Rbrace; T.Semi ];
    check_tokens "decimal literal" "42" [ T.Int_lit 42L ];
    check_tokens "hex literal" "0x20000001" [ T.Int_lit 0x20000001L ];
    check_tokens "octal literal" "0755" [ T.Int_lit 493L ];
    check_tokens "zero" "0" [ T.Int_lit 0L ];
    check_tokens "float literal" "3.5" [ T.Float_lit 3.5 ];
    check_tokens "float with exponent" "1e3" [ T.Float_lit 1000.0 ];
    check_tokens "negative is minus then literal" "-7" [ T.Minus; T.Int_lit 7L ];
    check_tokens "string literal" "\"hi there\"" [ T.String_lit "hi there" ];
    check_tokens "string with escapes" "\"a\\n\\t\\\"b\\\\\""
      [ T.String_lit "a\n\t\"b\\" ];
    check_tokens "char literal" "'x'" [ T.Char_lit 'x' ];
    check_tokens "escaped char literal" "'\\n'" [ T.Char_lit '\n' ];
    check_tokens "scope operator" "a::b"
      [ T.Ident "a"; T.Coloncolon; T.Ident "b" ];
    check_tokens "colon vs coloncolon" "a : b"
      [ T.Ident "a"; T.Colon; T.Ident "b" ];
    check_tokens "shifts vs angles" "< << > >>"
      [ T.Langle; T.Lshift; T.Rangle; T.Rshift ];
    check_tokens "all operators" "+ - * / % | & ^ ~ ? = , @"
      [
        T.Plus; T.Minus; T.Star; T.Slash; T.Percent; T.Pipe; T.Amp; T.Caret;
        T.Tilde; T.Question; T.Equal; T.Comma; T.At;
      ];
  ]

let trivia_tests =
  [
    check_tokens "line comment" "a // comment\nb" [ T.Ident "a"; T.Ident "b" ];
    check_tokens "block comment" "a /* x\ny */ b" [ T.Ident "a"; T.Ident "b" ];
    check_tokens "preprocessor line skipped" "#include <foo.h>\nx" [ T.Ident "x" ];
    check_tokens "rpcgen percent line skipped" "%#define FOO\nx" [ T.Ident "x" ];
    check_tokens "empty input" "" [];
    check_tokens "whitespace only" "  \t\n  " [];
    check_tokens "comment at eof" "x //end" [ T.Ident "x" ];
  ]

let error_tests =
  [
    check_fails "unterminated string" "\"abc";
    check_fails "unterminated comment" "/* abc";
    check_fails "unterminated char" "'a";
    check_fails "bad escape" "\"\\q\"";
    check_fails "stray backquote" "`";
    check_fails "stray dollar" "$x";
  ]

let location_test =
  Alcotest.test_case "locations track lines and columns" `Quick (fun () ->
      let lx = Idl_lexer.of_string ~file:"f.idl" "ab\n  cd" in
      let _, loc1 = Idl_lexer.next lx in
      let _, loc2 = Idl_lexer.next lx in
      Alcotest.(check int) "first line" 1 loc1.Loc.start_pos.Loc.line;
      Alcotest.(check int) "first col" 1 loc1.Loc.start_pos.Loc.col;
      Alcotest.(check int) "second line" 2 loc2.Loc.start_pos.Loc.line;
      Alcotest.(check int) "second col" 3 loc2.Loc.start_pos.Loc.col)

let peek_test =
  Alcotest.test_case "peek and peek2 do not consume" `Quick (fun () ->
      let lx = Idl_lexer.of_string "a b c" in
      Alcotest.(check bool) "peek" true (fst (Idl_lexer.peek lx) = T.Ident "a");
      Alcotest.(check bool) "peek2" true (Idl_lexer.peek2 lx = T.Ident "b");
      Alcotest.(check bool) "next" true (fst (Idl_lexer.next lx) = T.Ident "a");
      Alcotest.(check bool) "next2" true (fst (Idl_lexer.next lx) = T.Ident "b"))

let suite =
  [
    ("lexer:basic", basic_tests);
    ("lexer:trivia", trivia_tests);
    ("lexer:errors", error_tests);
    ("lexer:positions", [ location_test; peek_test ]);
  ]
