(* Boundary-value coverage for the value-dependent wire formats.

   The msgpack and cbor codecs pick their header width from the value,
   so every width transition is a potential off-by-one: a value encoded
   one byte wider than canonical must be rejected on parse, and a value
   at the last width must not spill into the next.  Each transition is
   pinned here byte-for-byte through the shared {!Codec} mapping (the
   single Value.t <-> varcodec bridge every engine tier uses), then
   round-tripped, then truncated inside the header to prove the typed
   failure is the same for the plan executor and the naive engine.

   The last group pins the verifier's rejection of an under-reserved
   variable header — the new corruption class the Put_varhead op adds:
   an emit whose worst case was never ensured. *)

let test name f = Alcotest.test_case name `Quick f

let hex b =
  String.concat ""
    (List.map (Printf.sprintf "%02x")
       (List.map Char.code (List.of_seq (String.to_seq (Bytes.to_string b)))))

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let vcc_of (enc : Encoding.t) =
  match enc.Encoding.var with
  | Some v -> v
  | None -> Alcotest.fail (enc.Encoding.name ^ " has no varcodec")

let i32 = Encoding.Kint { bits = 32; signed = true }
let u32 = Encoding.Kint { bits = 32; signed = false }

(* emit one scalar through the shared mapping and return its hex *)
let emit_var enc kind v =
  let buf = Mbuf.create 16 in
  Codec.write_var (vcc_of enc) ~check:true kind buf v;
  Mbuf.contents buf

let emit_len enc lk n =
  let buf = Mbuf.create 16 in
  Codec.write_vlen (vcc_of enc) ~check:true lk buf n;
  Mbuf.contents buf

(* canonical image pinned, round trip equal, whole image consumed, and
   every proper prefix (truncation inside the header) raises the typed
   short-buffer error *)
let pin_scalar enc kind v expect () =
  let img = emit_var enc kind v in
  Alcotest.(check string) "canonical image" expect (hex img);
  let r = Mbuf.reader_of_bytes img in
  let got = Codec.read_var (vcc_of enc) kind r in
  if not (Value.equal got v) then
    Alcotest.failf "round trip: wrote %a, read %a" Value.pp v Value.pp got;
  Alcotest.(check int) "whole image consumed" 0 (Mbuf.remaining r);
  for cut = 0 to Bytes.length img - 1 do
    match Codec.read_var (vcc_of enc) kind (Mbuf.reader_of_bytes ~len:cut img)
    with
    | (_ : Value.t) ->
        Alcotest.failf "accepted a header truncated at %d/%d bytes" cut
          (Bytes.length img)
    | exception Mbuf.Short_buffer -> ()
  done

let pin_len enc lk n expect () =
  let img = emit_len enc lk n in
  Alcotest.(check string) "canonical image" expect (hex img);
  let r = Mbuf.reader_of_bytes img in
  Alcotest.(check int) "round trip" n (Codec.read_vlen (vcc_of enc) lk r);
  Alcotest.(check int) "whole image consumed" 0 (Mbuf.remaining r);
  for cut = 0 to Bytes.length img - 1 do
    match Codec.read_vlen (vcc_of enc) lk (Mbuf.reader_of_bytes ~len:cut img)
    with
    | (_ : int) ->
        Alcotest.failf "accepted a header truncated at %d/%d bytes" cut
          (Bytes.length img)
    | exception Mbuf.Short_buffer -> ()
  done

let vi n = Value.Vint n

(* -- msgpack: every width transition ---------------------------------- *)

let msgpack_int_tests =
  List.map
    (fun (v, expect) ->
      test
        (Printf.sprintf "msgpack int %d -> %s" v expect)
        (pin_scalar Encoding.msgpack i32 (vi v) expect))
    [
      (0, "00"); (127, "7f"); (128, "cc80"); (255, "ccff"); (256, "cd0100");
      (65535, "cdffff"); (65536, "ce00010000");
      (-32, "e0"); (-33, "d0df"); (-128, "d080"); (-129, "d1ff7f");
      (-32768, "d18000"); (-32769, "d2ffff7fff");
    ]

let msgpack_len_tests =
  List.map
    (fun (lk, lname, n, expect) ->
      test
        (Printf.sprintf "msgpack %s len %d -> %s" lname n expect)
        (pin_len Encoding.msgpack lk n expect))
    [
      (Encoding.Lstr, "fixstr", 31, "bf");
      (Encoding.Lstr, "str8", 32, "d920");
      (Encoding.Lstr, "str8", 255, "d9ff");
      (Encoding.Lstr, "str16", 256, "da0100");
      (Encoding.Lstr, "str16", 65535, "daffff");
      (Encoding.Lstr, "str32", 65536, "db00010000");
      (Encoding.Lbin, "bin8", 255, "c4ff");
      (Encoding.Lbin, "bin16", 256, "c50100");
      (Encoding.Lbin, "bin16", 65535, "c5ffff");
      (Encoding.Lbin, "bin32", 65536, "c600010000");
      (Encoding.Larr, "fixarray", 15, "9f");
      (Encoding.Larr, "array16", 16, "dc0010");
      (Encoding.Larr, "array16", 65535, "dcffff");
      (Encoding.Larr, "array32", 65536, "dd00010000");
    ]

(* -- cbor: 23/24, 255/256, 65535/65536 on every major type ------------ *)

let cbor_int_tests =
  List.map
    (fun (v, expect) ->
      test
        (Printf.sprintf "cbor int %d -> %s" v expect)
        (pin_scalar Encoding.cbor i32 (vi v) expect))
    [
      (0, "00"); (23, "17"); (24, "1818"); (255, "18ff"); (256, "190100");
      (65535, "19ffff"); (65536, "1a00010000");
      (-24, "37"); (-25, "3818"); (-256, "38ff"); (-257, "390100");
      (-65536, "39ffff"); (-65537, "3a00010000");
    ]

let cbor_len_tests =
  List.map
    (fun (lk, lname, n, expect) ->
      test
        (Printf.sprintf "cbor %s len %d -> %s" lname n expect)
        (pin_len Encoding.cbor lk n expect))
    [
      (Encoding.Lbin, "bytes", 23, "57");
      (Encoding.Lbin, "bytes", 24, "5818");
      (Encoding.Lbin, "bytes", 255, "58ff");
      (Encoding.Lbin, "bytes", 256, "590100");
      (Encoding.Lbin, "bytes", 65535, "59ffff");
      (Encoding.Lbin, "bytes", 65536, "5a00010000");
      (Encoding.Lstr, "text", 23, "77");
      (Encoding.Lstr, "text", 24, "7818");
      (Encoding.Lstr, "text", 255, "78ff");
      (Encoding.Lstr, "text", 256, "790100");
      (Encoding.Lstr, "text", 65535, "79ffff");
      (Encoding.Lstr, "text", 65536, "7a00010000");
      (Encoding.Larr, "array", 23, "97");
      (Encoding.Larr, "array", 24, "9818");
      (Encoding.Larr, "array", 255, "98ff");
      (Encoding.Larr, "array", 256, "990100");
      (Encoding.Larr, "array", 65535, "99ffff");
      (Encoding.Larr, "array", 65536, "9a00010000");
    ]

(* -- non-minimal headers are rejected on parse ------------------------ *)

let non_minimal_tests =
  List.map
    (fun (enc, name, img) ->
      test (name ^ " rejects a non-minimal header") (fun () ->
          let img = Bytes.of_string img in
          match Codec.read_var (vcc_of enc) i32 (Mbuf.reader_of_bytes img) with
          | (_ : Value.t) ->
              Alcotest.failf "accepted non-minimal %s" (hex img)
          | exception Codec.Decode_error _ -> ()))
    [
      (* 127 as uint8: one width too wide *)
      (Encoding.msgpack, "msgpack", "\xcc\x7f");
      (* 255 as uint16 *)
      (Encoding.msgpack, "msgpack 16-bit", "\xcd\x00\xff");
      (* 23 with a one-byte argument *)
      (Encoding.cbor, "cbor", "\x18\x17");
      (* 255 with a two-byte argument *)
      (Encoding.cbor, "cbor 16-bit", "\x19\x00\xff");
    ]

(* -- scalar boundaries through the full pipeline ---------------------- *)

(* one i32 parameter: the plan path emits Put_varhead, the naive path
   calls Codec.write_var — both must produce exactly the pinned image *)
let pipeline_scalar_tests =
  List.map
    (fun (enc, v, expect) ->
      test
        (Printf.sprintf "%s pipeline i32 %d -> %s" enc.Encoding.name v expect)
        (fun () ->
          let m = Mint.create () in
          let idx = Mint.int32 m in
          let roots =
            [
              Plan_compile.Rvalue
                ( Mplan.Rparam { index = 0; name = "v"; deref = false },
                  idx, Pres.Direct );
            ]
          in
          let e_plan = Stub_opt.compile_encoder ~enc ~mint:m ~named:[] roots in
          let e_naive =
            Stub_naive.compile_encoder ~enc ~mint:m ~named:[] roots
          in
          let run e =
            let buf = Mbuf.create 16 in
            e buf [| vi v |];
            hex (Mbuf.contents buf)
          in
          Alcotest.(check string) "plan bytes" expect (run e_plan);
          Alcotest.(check string) "naive bytes" expect (run e_naive);
          let d =
            Stub_opt.compile_decoder ~enc ~mint:m ~named:[]
              [ Stub_opt.Dvalue (idx, Pres.Direct) ]
          in
          let wire = emit_var enc i32 (vi v) in
          match d (Mbuf.reader_of_bytes wire) with
          | [| got |] when Value.equal got (vi v) -> ()
          | _ -> Alcotest.fail "plan decode disagrees"))
    (List.concat_map
       (fun enc -> [ (enc, 127, ""); (enc, 128, ""); (enc, 65536, "") ])
       [ Encoding.msgpack; Encoding.cbor ]
    |> List.map (fun (enc, v, _) ->
           let buf = Mbuf.create 16 in
           Codec.write_var (vcc_of enc) ~check:true i32 buf (vi v);
           (enc, v, hex (Mbuf.contents buf))))

(* -- truncation mid-header parity across engine tiers ----------------- *)

(* A 300-char string forces a multi-byte length header (msgpack str16,
   cbor text+2).  Cut the wire at EVERY byte — including each byte
   inside the header — and require the plan decoder and the naive
   decoder to fail (or succeed) identically. *)
let truncation_parity_tests =
  List.map
    (fun (enc : Encoding.t) ->
      test
        (enc.Encoding.name ^ ": mid-header truncation parity across tiers")
        (fun () ->
          let m = Mint.create () in
          let s = Mint.string_ m ~max_len:(Some 512) in
          let roots =
            [
              Plan_compile.Rvalue
                ( Mplan.Rparam { index = 0; name = "s"; deref = false },
                  s, Pres.Terminated_string );
            ]
          in
          let droots = [ Stub_opt.Dvalue (s, Pres.Terminated_string) ] in
          let v = Value.Vstring (String.make 300 'x') in
          let e = Stub_opt.compile_encoder ~enc ~mint:m ~named:[] roots in
          let buf = Mbuf.create 512 in
          e buf [| v |];
          let wire = Mbuf.contents buf in
          let d_plan = Stub_opt.compile_decoder ~enc ~mint:m ~named:[] droots
          and d_naive =
            Stub_naive.compile_decoder ~enc ~mint:m ~named:[] droots
          in
          let outcome d cut =
            match d (Mbuf.reader_of_bytes ~len:cut wire) with
            | [| v' |] -> Some v'
            | _ -> None
            | exception (Mbuf.Short_buffer | Codec.Decode_error _) -> None
          in
          for cut = 0 to Bytes.length wire do
            let a = outcome d_plan cut and b = outcome d_naive cut in
            match (a, b) with
            | None, None -> ()
            | Some x, Some y when Value.equal x y -> ()
            | _ ->
                Alcotest.failf "tiers disagree at cut %d/%d" cut
                  (Bytes.length wire)
          done;
          match outcome d_plan (Bytes.length wire) with
          | Some v' when Value.equal v' v -> ()
          | _ -> Alcotest.fail "full wire did not decode to the input"))
    [ Encoding.msgpack; Encoding.cbor ]

(* -- the verifier rejects a dropped worst-case reservation ------------ *)

let verifier_tests =
  [
    test "generated msgpack/cbor plans verify clean" (fun () ->
        List.iter
          (fun enc ->
            let m = Mint.create () in
            let s = Mint.string_ m ~max_len:(Some 64) in
            let arr = Mint.array m ~elem:(Mint.int32 m) ~min_len:0
                ~max_len:(Some 16) in
            let payload = Mint.struct_ m [ ("name", s); ("xs", arr) ] in
            let pres =
              Pres.Struct
                [
                  ("name", Pres.Terminated_string);
                  ( "xs",
                    Pres.Counted_seq
                      {
                        len_field = "_length";
                        buf_field = "_buffer";
                        elem = Pres.Direct;
                      } );
                ]
            in
            let roots =
              [
                Plan_compile.Rvalue
                  ( Mplan.Rparam { index = 0; name = "v"; deref = false },
                    payload, pres );
              ]
            in
            let plan = Plan_compile.compile ~enc ~mint:m ~named:[] roots in
            (match Plan_verify.check_plan plan with
            | Ok () -> ()
            | Error e ->
                Alcotest.failf "%s plan rejected: %s" enc.Encoding.name
                  (Plan_verify.error_to_string e));
            let dplan =
              Dplan_compile.compile ~enc ~mint:m ~named:[]
                [ Dplan_compile.Dvalue (payload, pres) ]
            in
            match Plan_verify.check_dplan dplan with
            | Ok () -> ()
            | Error e ->
                Alcotest.failf "%s dplan rejected: %s" enc.Encoding.name
                  (Plan_verify.error_to_string e))
          [ Encoding.msgpack; Encoding.cbor ]);
    test "under-reserved variable header is rejected (pinned diagnostic)"
      (fun () ->
        (* vh_check = false with no covering Ensure ahead of it: the
           emit could overrun the buffer by up to vh_worst bytes *)
        let bad =
          {
            Plan_compile.p_ops =
              [
                Mplan.Put_varhead
                  {
                    vh_kind = i32;
                    vh_worst = 5;
                    vh_check = false;
                    vh_src = Mplan.Vh_const 7L;
                    vh_image = Some "\x07";
                  };
              ];
            p_subs = [];
          }
        in
        match Plan_verify.check_plan bad with
        | Ok () -> Alcotest.fail "verifier accepted an under-reserved varhead"
        | Error e ->
            let msg = Plan_verify.error_to_string e in
            if
              not
                (contains msg
                   "variable header skips its worst-case reservation outside \
                    any covering reservation (dropped ensure)")
            then Alcotest.failf "wrong diagnostic: %s" msg);
    test "self-checking variable header is accepted" (fun () ->
        let ok =
          {
            Plan_compile.p_ops =
              [
                Mplan.Put_varhead
                  {
                    vh_kind = i32;
                    vh_worst = 5;
                    vh_check = true;
                    vh_src = Mplan.Vh_const 7L;
                    vh_image = Some "\x07";
                  };
              ];
            p_subs = [];
          }
        in
        match Plan_verify.check_plan ok with
        | Ok () -> ()
        | Error e ->
            Alcotest.failf "verifier rejected a self-checking varhead: %s"
              (Plan_verify.error_to_string e));
    test "unsigned kinds pin the same transitions" (fun () ->
        Alcotest.(check string) "msgpack u32 128" "cc80"
          (hex (emit_var Encoding.msgpack u32 (vi 128)));
        Alcotest.(check string) "cbor u32 24" "1818"
          (hex (emit_var Encoding.cbor u32 (vi 24))));
  ]

let suite =
  [
    ( "varhead:boundaries",
      msgpack_int_tests @ msgpack_len_tests @ cbor_int_tests @ cbor_len_tests
      @ non_minimal_tests );
    ("varhead:pipeline", pipeline_scalar_tests @ truncation_parity_tests);
    ("varhead:verifier", verifier_tests);
  ]
