(* The server loop under test, three ways:

   1. Differential: random interleavings across 1-64 connections must
      produce, for every request, a reply byte-identical to the one a
      single-connection sequential server gives for the same request —
      and below the backpressure threshold no request may be dropped or
      shed (>= 500 random cases per encoding).

   2. Fault injection: a connection dying mid-request, a truncated
      body, a garbage or oversized length prefix, and an unknown
      interface id each produce a pinned Diag-formatted error or an
      explicit reject reply, never poison other connections, and leak
      no pooled writers (Mbuf pool outstanding counts return to
      baseline around every scenario).

   3. Plan-cache churn: interleaved lookups across many interfaces keep
      the hits/misses/entries/evictions/resets counters consistent with
      a shadow model of the drop-the-table overflow policy. *)

module Q = QCheck

(* Memoized: deriving the presentation and method spec is far too
   expensive to redo per generated request. *)
let spec_table : (string * string, Rpc_serve.op_spec) Hashtbl.t =
  Hashtbl.create 16

let spec_for enc payload =
  let op = Paper_fixtures.op_of_payload payload in
  match Hashtbl.find_opt spec_table (enc.Encoding.name, op) with
  | Some s -> s
  | None ->
      let style =
        match enc.Encoding.name with
        | "cdr" -> `Corba
        | "xdr" -> `Rpcgen
        | _ -> `Fluke
      in
      let pc = Paper_fixtures.bench_presc style in
      let ms = Paper_fixtures.request_spec pc ~op in
      let opno =
        match payload with `Ints -> 1 | `Rects -> 2 | `Dirents -> 3
      in
      let s = Rpc_serve.echo_op ~iface:1 ~op:opno ~enc ms in
      Hashtbl.add spec_table (enc.Encoding.name, op) s;
      s

let register_all t enc =
  List.iter
    (fun p -> Rpc_serve.register t (spec_for enc p))
    [ `Ints; `Rects; `Dirents ]

(* One logical request of a random case. *)
type req = {
  r_conn : int;
  r_seq : int;
  r_payload : [ `Ints | `Rects | `Dirents ];
  r_bytes : int;
  r_at : float;  (* virtual send time in the concurrent run *)
}

type case = { k_conns : int; k_reqs : req list }

let case_gen =
  let open Q.Gen in
  let* conns =
    frequency
      [ (6, int_range 1 8); (3, int_range 9 24); (1, int_range 25 64) ]
  in
  let* per_conn =
    list_repeat conns
      (let* n = int_range 1 3 in
       list_repeat n
         (let* payload =
            frequency [ (3, return `Ints); (2, return `Rects); (1, return `Dirents) ]
          in
          let* bytes = int_range 8 400 in
          let* at_us = int_range 0 500 in
          return (payload, bytes, float_of_int at_us *. 1e-6)))
  in
  let reqs =
    List.concat
      (List.mapi
         (fun cid reqs ->
           List.mapi
             (fun i (payload, bytes, at) ->
               {
                 r_conn = cid;
                 r_seq = (cid * 10_000) + i;
                 r_payload = payload;
                 r_bytes = bytes;
                 r_at = at;
               })
             reqs)
         per_conn)
  in
  return { k_conns = conns; k_reqs = reqs }

let case_print c =
  Printf.sprintf "{conns=%d; reqs=[%s]}" c.k_conns
    (String.concat "; "
       (List.map
          (fun r ->
            Printf.sprintf "c%d seq%d %s %dB @%.0fus" r.r_conn r.r_seq
              (match r.r_payload with
              | `Ints -> "ints"
              | `Rects -> "rects"
              | `Dirents -> "dirents")
              r.r_bytes (r.r_at *. 1e6))
          c.k_reqs))

let arbitrary_case = Q.make ~print:case_print case_gen

(* Collect every reply of a run into seq -> (status, payload). *)
let run_case enc (case : case) ~conns ~max_in_flight ~sequential =
  let sim = Sim_core.create () in
  let ingress = Link.ethernet_100 ~sim in
  let egress = Link.ethernet_100 ~sim in
  let config = { Rpc_serve.default_config with Rpc_serve.max_in_flight } in
  let t = Rpc_serve.create ~sim ~config ~ingress ~egress () in
  register_all t enc;
  let replies = Hashtbl.create 64 in
  let on_flush data =
    List.iter
      (fun (status, seq, payload) ->
        if Hashtbl.mem replies seq then
          Q.Test.fail_reportf "duplicate reply for seq %d" seq;
        Hashtbl.add replies seq (status, payload))
      (Rpc_serve.parse_replies data)
  in
  let cs =
    Array.init conns (fun _ -> Rpc_serve.connect t ~deliver:on_flush)
  in
  List.iteri
    (fun i r ->
      let spec = spec_for enc r.r_payload in
      let vals = [| Paper_fixtures.payload r.r_payload ~bytes:r.r_bytes |] in
      let frame = Rpc_serve.request_frame spec ~seq:r.r_seq vals in
      if sequential then
        (* one connection, strictly one frame at a time: spaced far
           beyond worst-case service + flush + wire *)
        Sim_core.schedule sim
          ~delay:(float_of_int i *. 10e-3)
          (fun () -> Rpc_serve.send cs.(0) frame)
      else
        Sim_core.schedule sim ~delay:r.r_at (fun () ->
            Rpc_serve.send cs.(r.r_conn mod conns) frame))
    case.k_reqs;
  Sim_core.run sim;
  (replies, Rpc_serve.stats t)

let differential_prop enc (case : case) =
  let total = List.length case.k_reqs in
  (* budget >= total outstanding: below the backpressure threshold,
     nothing may be shed or dropped *)
  let concurrent, cstats =
    run_case enc case ~conns:case.k_conns ~max_in_flight:total ~sequential:false
  in
  let baseline, bstats =
    run_case enc case ~conns:1 ~max_in_flight:total ~sequential:true
  in
  if cstats.Rpc_serve.st_shed <> 0 then
    Q.Test.fail_reportf "shed %d below the backpressure threshold"
      cstats.Rpc_serve.st_shed;
  if bstats.Rpc_serve.st_shed <> 0 then
    Q.Test.fail_reportf "sequential baseline shed %d" bstats.Rpc_serve.st_shed;
  if Hashtbl.length concurrent <> total then
    Q.Test.fail_reportf "%d of %d requests answered (silent drop)"
      (Hashtbl.length concurrent) total;
  if Hashtbl.length baseline <> total then
    Q.Test.fail_reportf "baseline answered %d of %d" (Hashtbl.length baseline)
      total;
  List.iter
    (fun r ->
      let cstatus, cpl = Hashtbl.find concurrent r.r_seq in
      let bstatus, bpl = Hashtbl.find baseline r.r_seq in
      if cstatus <> Rpc_serve.Sok then
        Q.Test.fail_reportf "seq %d: concurrent status %d, want Ok" r.r_seq
          (Rpc_serve.status_code cstatus);
      if bstatus <> Rpc_serve.Sok then
        Q.Test.fail_reportf "seq %d: baseline status %d, want Ok" r.r_seq
          (Rpc_serve.status_code bstatus);
      if not (Bytes.equal cpl bpl) then
        Q.Test.fail_reportf
          "seq %d: concurrent reply differs from sequential baseline (%d vs \
           %d bytes)"
          r.r_seq (Bytes.length cpl) (Bytes.length bpl))
    case.k_reqs;
  true

let differential_tests =
  List.map
    (fun enc ->
      QCheck_alcotest.to_alcotest
        (Q.Test.make
           ~name:
             (Printf.sprintf "concurrent replies = sequential baseline (%s)"
                enc.Encoding.name)
           ~count:500 arbitrary_case (differential_prop enc)))
    [ Encoding.xdr; Encoding.cdr; Encoding.mach3 ]

(* -- fault injection ----------------------------------------------- *)

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* Every scenario must leave the writer/reader pools where it found
   them: a leaked pooled buffer shows up as an outstanding delta. *)
let with_pool_check f =
  let before = Mbuf.pool_stats () in
  let r = f () in
  let after = Mbuf.pool_stats () in
  checki "pooled writers outstanding unchanged"
    before.Mbuf.writers_outstanding after.Mbuf.writers_outstanding;
  checki "pooled readers outstanding unchanged"
    before.Mbuf.readers_outstanding after.Mbuf.readers_outstanding;
  r

let make_server () =
  let sim = Sim_core.create () in
  let ingress = Link.ethernet_100 ~sim in
  let egress = Link.ethernet_100 ~sim in
  let t = Rpc_serve.create ~sim ~ingress ~egress () in
  register_all t Encoding.xdr;
  (sim, t)

let ints_frame ~seq ~bytes =
  let spec = spec_for Encoding.xdr `Ints in
  Rpc_serve.request_frame spec ~seq [| Paper_fixtures.payload `Ints ~bytes |]

let replies_of cell =
  match !cell with None -> [] | Some data -> Rpc_serve.parse_replies data

let test_unknown_interface () =
  with_pool_check (fun () ->
      let sim, t = make_server () in
      let got = ref None in
      let c = Rpc_serve.connect t ~deliver:(fun d -> got := Some d) in
      let frame = ints_frame ~seq:5 ~bytes:64 in
      Bytes.set_int32_be frame 4 9l; (* iface 9: not registered *)
      Rpc_serve.feed c frame;
      Sim_core.run sim;
      (match replies_of got with
      | [ (Rpc_serve.Sunknown_op, 5, pl) ] ->
          checki "reject reply carries no payload" 0 (Bytes.length pl)
      | _ -> Alcotest.fail "expected exactly one Sunknown_op reply");
      check
        Alcotest.(list string)
        "pinned diag"
        [ "<unknown>: error: serve: connection 0: unknown operation (iface \
           9, op 1)" ]
        (Rpc_serve.diags t);
      let st = Rpc_serve.stats t in
      checki "counted as unknown_op" 1 st.Rpc_serve.st_unknown_op;
      checki "connection not killed" 0 st.Rpc_serve.st_killed_conns)

(* Run [f] with the request recorder live (sampling everything into a
   small ring) and leave it disabled and empty afterwards — the fault
   tests pin that kill/close paths flush their records into the flight
   ring before discarding connection state. *)
let with_recorder f =
  Obs_request.configure ~ring_capacity:64 ~sample_every:1 ();
  Obs_request.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs_request.set_enabled false;
      Obs_request.reset_metrics ();
      Obs_request.configure ~ring_capacity:256 ~sample_every:1 ())
    f

let ring_pin () =
  List.map
    (fun r ->
      (Obs_request.outcome_name (Obs_request.outcome r), Obs_request.seq r))
    (Obs_request.ring_records ())

let test_bad_length_prefix () =
  with_recorder @@ fun () ->
  with_pool_check (fun () ->
      let sim, t = make_server () in
      let got_bad = ref None and got_ok = ref None in
      let bad = Rpc_serve.connect t ~deliver:(fun d -> got_bad := Some d) in
      let ok = Rpc_serve.connect t ~deliver:(fun d -> got_ok := Some d) in
      (* oversized: length prefix way past max_frame *)
      let garbage = Bytes.create 4 in
      Bytes.set_int32_be garbage 0 0x7fffffffl;
      Rpc_serve.feed bad garbage;
      check
        Alcotest.(list (pair string int))
        "the kill left a flight-ring marker before any request existed"
        [ ("killed_conn", -1) ]
        (ring_pin ());
      (* the other connection must be unaffected *)
      Rpc_serve.feed ok (ints_frame ~seq:1 ~bytes:64);
      Sim_core.run sim;
      checkb "killed connection got no reply" true (!got_bad = None);
      (match replies_of got_ok with
      | [ (Rpc_serve.Sok, 1, _) ] -> ()
      | _ -> Alcotest.fail "healthy connection should still get its reply");
      check
        Alcotest.(list string)
        "pinned diag"
        [ "<unknown>: error: serve: connection 0: bad frame length \
           2147483647 (min 12, max 1048576)" ]
        (Rpc_serve.diags t);
      checki "one killed connection" 1
        (Rpc_serve.stats t).Rpc_serve.st_killed_conns;
      (* frames after death are ignored, without new diags *)
      Rpc_serve.feed bad (ints_frame ~seq:2 ~bytes:64);
      Sim_core.run sim;
      checki "dead connection stays dead" 1 (List.length (Rpc_serve.diags t));
      check
        Alcotest.(list (pair string int))
        "ring: the kill marker, then the healthy request"
        [ ("killed_conn", -1); ("ok", 1) ]
        (ring_pin ()))

let test_undersized_length_prefix () =
  with_pool_check (fun () ->
      let sim, t = make_server () in
      let c = Rpc_serve.connect t ~deliver:(fun _ -> ()) in
      let garbage = Bytes.create 4 in
      Bytes.set_int32_be garbage 0 3l; (* below the 12-byte header *)
      Rpc_serve.feed c garbage;
      Sim_core.run sim;
      check
        Alcotest.(list string)
        "pinned diag"
        [ "<unknown>: error: serve: connection 0: bad frame length 3 (min \
           12, max 1048576)" ]
        (Rpc_serve.diags t))

let test_death_mid_request () =
  with_pool_check (fun () ->
      let sim, t = make_server () in
      let got = ref None in
      let c = Rpc_serve.connect t ~deliver:(fun d -> got := Some d) in
      let frame = ints_frame ~seq:3 ~bytes:128 in
      (* half the frame arrives, then the client dies *)
      Rpc_serve.feed c (Bytes.sub frame 0 (Bytes.length frame / 2));
      Rpc_serve.close_conn c;
      Sim_core.run sim;
      checkb "no reply for a half frame" true (!got = None);
      check
        Alcotest.(list string)
        "pinned diag"
        [ Printf.sprintf
            "<unknown>: error: serve: connection 0 closed mid-frame (%d \
             buffered bytes discarded)"
            (Bytes.length frame / 2) ]
        (Rpc_serve.diags t);
      let st = Rpc_serve.stats t in
      checki "nothing accepted" 0 st.Rpc_serve.st_accepted)

let test_truncated_body () =
  with_pool_check (fun () ->
      let sim, t = make_server () in
      let got = ref [] in
      let c = Rpc_serve.connect t ~deliver:(fun d -> got := !got @ [ d ]) in
      let frame = ints_frame ~seq:4 ~bytes:256 in
      (* well-framed garbage: drop the payload tail and re-stamp the
         length so the frame parses but the decoder hits Short_buffer *)
      let cut = Bytes.length frame - 100 in
      let short = Bytes.sub frame 0 cut in
      Bytes.set_int32_be short 0 (Int32.of_int (cut - 4));
      Rpc_serve.feed c short;
      Sim_core.run sim;
      (match List.concat_map Rpc_serve.parse_replies !got with
      | [ (Rpc_serve.Sbad_request, 4, _) ] -> ()
      | _ -> Alcotest.fail "expected exactly one Sbad_request reply");
      check
        Alcotest.(list string)
        "pinned diag"
        [ Printf.sprintf
            "<unknown>: error: serve: connection 0: undecodable send_ints \
             request (seq 4, %d bytes)"
            (cut - 16) ]
        (Rpc_serve.diags t);
      (* the connection is not poisoned: a good request still works *)
      got := [];
      Rpc_serve.feed c (ints_frame ~seq:5 ~bytes:64);
      Sim_core.run sim;
      (match List.concat_map Rpc_serve.parse_replies !got with
      | [ (Rpc_serve.Sok, 5, _) ] -> ()
      | _ -> Alcotest.fail "connection should recover after a bad body"))

let test_death_with_pending_reply () =
  with_recorder @@ fun () ->
  with_pool_check (fun () ->
      let sim, t = make_server () in
      let got = ref None in
      let c = Rpc_serve.connect t ~deliver:(fun d -> got := Some d) in
      Rpc_serve.feed c (ints_frame ~seq:6 ~bytes:64);
      (* run past service completion (reply queued, flush armed) but
         not past the flush delay, then kill the connection *)
      Sim_core.run_until sim 180e-6;
      checki "service finished" 0 (Rpc_serve.in_flight t);
      Rpc_serve.close_conn c;
      Sim_core.run sim;
      checkb "queued reply was dropped" true (!got = None);
      checki "drop accounted" 1 (Rpc_serve.stats t).Rpc_serve.st_dropped_replies;
      (* the close flushed the queued reply's record into the ring *)
      check
        Alcotest.(list (pair string int))
        "pending reply's record reaches the ring on close"
        [ ("dropped", 6) ]
        (ring_pin ()))

let test_shed_reply () =
  with_pool_check (fun () ->
      let sim = Sim_core.create () in
      let ingress = Link.ethernet_100 ~sim in
      let egress = Link.ethernet_100 ~sim in
      let config = { Rpc_serve.default_config with Rpc_serve.max_in_flight = 1 } in
      let t = Rpc_serve.create ~sim ~config ~ingress ~egress () in
      register_all t Encoding.xdr;
      let got = ref [] in
      let c = Rpc_serve.connect t ~deliver:(fun d -> got := !got @ [ d ]) in
      Rpc_serve.feed c (ints_frame ~seq:7 ~bytes:64);
      Rpc_serve.feed c (ints_frame ~seq:8 ~bytes:64);
      Sim_core.run sim;
      let replies =
        List.concat_map Rpc_serve.parse_replies !got
        |> List.map (fun (st, seq, _) -> (Rpc_serve.status_code st, seq))
        |> List.sort compare
      in
      check
        Alcotest.(list (pair int int))
        "first accepted, second shed with an explicit reject"
        [ (Rpc_serve.status_code Rpc_serve.Sok, 7);
          (Rpc_serve.status_code Rpc_serve.Sshed, 8) ]
        replies;
      let st = Rpc_serve.stats t in
      checki "shed counted" 1 st.Rpc_serve.st_shed;
      checki "budget never exceeded" 1 st.Rpc_serve.st_in_flight_hw)

(* -- fairness: per-connection share of the budget ------------------ *)

(* One hog pipelines a 16-request burst while four peers each want one
   request.  Uncapped, the burst fits the global budget and owns the
   serial CPU queue, so the peers wait behind all of it; with a
   per-connection cap of 4 the hog is shed down to its share while
   global slots remain (counted under st_shed_per_conn) and every peer
   round-trips strictly sooner.  All time is virtual, so the latency
   comparison is exact. *)
let run_hog_case ~cap =
  let sim = Sim_core.create () in
  let ingress = Link.ethernet_100 ~sim in
  let egress = Link.ethernet_100 ~sim in
  let config =
    {
      Rpc_serve.default_config with
      Rpc_serve.max_in_flight = 16;
      max_in_flight_per_conn = cap;
    }
  in
  let t = Rpc_serve.create ~sim ~config ~ingress ~egress () in
  register_all t Encoding.xdr;
  let hog_ok = ref 0 and hog_shed = ref 0 in
  let hog =
    Rpc_serve.connect t ~deliver:(fun d ->
        List.iter
          (fun (st, _, _) ->
            match st with
            | Rpc_serve.Sok -> incr hog_ok
            | Rpc_serve.Sshed -> incr hog_shed
            | _ -> ())
          (Rpc_serve.parse_replies d))
  in
  Sim_core.schedule sim ~delay:0. (fun () ->
      for i = 0 to 15 do
        Rpc_serve.send hog (ints_frame ~seq:i ~bytes:1024)
      done);
  let peer_lat = ref [] in
  for p = 0 to 3 do
    let sent = ref 0. in
    let c =
      Rpc_serve.connect t ~deliver:(fun d ->
          List.iter
            (fun (st, _, _) ->
              if st = Rpc_serve.Sok then
                peer_lat := (Sim_core.now sim -. !sent) :: !peer_lat)
            (Rpc_serve.parse_replies d))
    in
    Sim_core.schedule sim
      ~delay:(1e-3 +. (float_of_int p *. 20e-6))
      (fun () ->
        sent := Sim_core.now sim;
        Rpc_serve.send c (ints_frame ~seq:(100 + p) ~bytes:1024))
  done;
  Sim_core.run sim;
  (Rpc_serve.stats t, !hog_ok, !hog_shed, !peer_lat)

let test_fairness_hog_vs_peers () =
  with_pool_check (fun () ->
      let st_cap, ok_cap, shed_cap, lat_cap = run_hog_case ~cap:(Some 4) in
      let st_none, ok_none, shed_none, lat_none = run_hog_case ~cap:None in
      checki "four peers answered (capped)" 4 (List.length lat_cap);
      checki "four peers answered (uncapped)" 4 (List.length lat_none);
      (* uncapped: the burst fits the global budget, nothing sheds *)
      checki "uncapped run sheds nothing" 0 st_none.Rpc_serve.st_shed;
      checki "uncapped fairness counter stays zero" 0
        st_none.Rpc_serve.st_shed_per_conn;
      checki "uncapped hog completes everything" 16 ok_none;
      checki "uncapped hog saw no shed replies" 0 shed_none;
      (* capped: the hog is shed down to its share with room to spare *)
      checkb "hog shed by the fairness cap" true (shed_cap > 0);
      checki "every shed happened with global slots free"
        st_cap.Rpc_serve.st_shed st_cap.Rpc_serve.st_shed_per_conn;
      checki "hog's accepted requests all complete" (16 - shed_cap) ok_cap;
      checkb "in-flight high water respects hog share + peers" true
        (st_cap.Rpc_serve.st_in_flight_hw <= 8);
      let worst l = List.fold_left Float.max 0. l in
      checkb "peers round-trip strictly sooner under the cap" true
        (worst lat_cap < worst lat_none))

(* -- plan-cache churn ---------------------------------------------- *)

(* Shadow-model the cache policy (hit; or miss, with the whole table
   dropped when full) over an interleaved key pattern and require the
   real counters to match exactly. *)
let test_cache_churn_counters () =
  let max_entries = 8 in
  let cache = Plan_cache.create ~name:"test.serve.churn" ~max_entries () in
  let model = Hashtbl.create 16 in
  let hits = ref 0
  and misses = ref 0
  and evictions = ref 0
  and resets = ref 0
  and promotions = ref 0 in
  let lookups = ref 0 in
  for round = 0 to 9 do
    for k = 0 to 19 do
      (* interleave: a hot working set of 4 plus a rotating tail *)
      let key =
        if k mod 2 = 0 then Printf.sprintf "hot-%d" (k mod 4)
        else Printf.sprintf "iface-%d-%d" round k
      in
      incr lookups;
      if Hashtbl.mem model key then incr hits
      else begin
        incr misses;
        if Hashtbl.length model >= max_entries then begin
          evictions := !evictions + Hashtbl.length model;
          incr resets;
          Hashtbl.reset model
        end;
        Hashtbl.add model key ()
      end;
      ignore (Plan_cache.find_or_add cache key (fun () -> key));
      (* tier promotions re-install a present key in place (the staged
         closure swap); model them as replaces that never touch the
         lookup counters *)
      if k mod 4 = 0 then begin
        incr promotions;
        Plan_cache.promote cache key key
      end
    done
  done;
  let st = Plan_cache.cache_stats cache in
  checki "hits" !hits st.Plan_cache.hits;
  checki "misses" !misses st.Plan_cache.misses;
  checki "entries" (Hashtbl.length model) st.Plan_cache.entries;
  checki "evictions" !evictions st.Plan_cache.evictions;
  checki "resets" !resets st.Plan_cache.resets;
  checki "promotions counted apart from hits" !promotions
    st.Plan_cache.promotions;
  checki "every lookup is a hit or a miss" !lookups
    (st.Plan_cache.hits + st.Plan_cache.misses);
  check (Alcotest.float 1e-9) "hit rate sees only real lookups"
    (float_of_int !hits /. float_of_int !lookups)
    (Plan_cache.hit_rate st);
  checkb "the pattern actually overflowed" true (st.Plan_cache.resets > 0)

(* The server's hot path reuses compiled closures: registering the same
   interface again must come back from the cache, not recompile. *)
let test_cache_hot_path () =
  let spec = spec_for Encoding.xdr `Rects in
  let compile () =
    Stub_opt.compile_encoder ~enc:spec.Rpc_serve.os_enc
      ~mint:spec.Rpc_serve.os_mint ~named:spec.Rpc_serve.os_named
      spec.Rpc_serve.os_reply_roots
  in
  let e1 = compile () in
  let hits_before =
    List.fold_left
      (fun acc (_, s) -> acc + s.Plan_cache.hits)
      0 (Plan_cache.all_stats ())
  in
  let e2 = compile () in
  let hits_after =
    List.fold_left
      (fun acc (_, s) -> acc + s.Plan_cache.hits)
      0 (Plan_cache.all_stats ())
  in
  checkb "second compile is a cache hit" true (hits_after > hits_before);
  checkb "same closure comes back" true (e1 == e2)

let suite =
  [
    ( "serve.differential",
      differential_tests
      @ [
          Alcotest.test_case "shed reply below budget 1" `Quick test_shed_reply;
          Alcotest.test_case "per-connection fairness: hog vs peers" `Quick
            test_fairness_hog_vs_peers;
        ] );
    ( "serve.faults",
      [
        Alcotest.test_case "unknown interface id" `Quick test_unknown_interface;
        Alcotest.test_case "oversized length prefix" `Quick
          test_bad_length_prefix;
        Alcotest.test_case "undersized length prefix" `Quick
          test_undersized_length_prefix;
        Alcotest.test_case "connection dies mid-request" `Quick
          test_death_mid_request;
        Alcotest.test_case "truncated body" `Quick test_truncated_body;
        Alcotest.test_case "connection dies with reply pending" `Quick
          test_death_with_pending_reply;
      ] );
    ( "serve.plan_cache",
      [
        Alcotest.test_case "churn counters match the shadow model" `Quick
          test_cache_churn_counters;
        Alcotest.test_case "hot path reuses cached closures" `Quick
          test_cache_hot_path;
      ] );
  ]
