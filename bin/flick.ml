(* The flick command-line compiler.

   flick compile --idl corba --presentation corba-c --backend iiop \
     mail.idl -o out/
   flick dump-aoi --idl onc service.x
   flick dump-presc --idl corba --presentation rpcgen-c mail.idl
   flick list-interfaces --idl corba mail.idl *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let handle_diag f =
  try f () with
  | Diag.Error d ->
      Printf.eprintf "%s\n" (Diag.to_string d);
      exit 1
  | Sys_error msg ->
      Printf.eprintf "flick: %s\n" msg;
      exit 1

(* ---- observability and staging flags -------------------------------- *)

(* Cmdliner group commands only accept options after the subcommand
   name, but the trace/metrics output files and the staged-specializer
   policy apply to the whole run, so they read naturally in either
   position:

     flick --trace-out=t.json compile ... mail.idl
     flick compile ... mail.idl --trace-out=t.json
     flick --stage=off stats

   We strip them from argv before cmdliner parses it. *)
let trace_out = ref None
let metrics_out = ref None
let flight_out = ref None

let set_stage v =
  match v with
  | "on" | "true" | "1" -> Opt_config.set_stage_enabled true
  | "off" | "false" | "0" -> Opt_config.set_stage_enabled false
  | v ->
      Printf.eprintf "flick: --stage expects on or off, got %S\n" v;
      exit 2

let set_stage_threshold v =
  match int_of_string_opt v with
  | Some n when n >= 1 -> Opt_config.set_stage_threshold n
  | _ ->
      Printf.eprintf
        "flick: --stage-threshold expects a positive integer, got %S\n" v;
      exit 2

let filter_obs_flags argv =
  let prefixed p a =
    String.length a > String.length p && String.sub a 0 (String.length p) = p
  in
  let tail p a = String.sub a (String.length p) (String.length a - String.length p) in
  let rec go acc = function
    | [] -> List.rev acc
    | "--trace-out" :: v :: rest ->
        trace_out := Some v;
        go acc rest
    | "--metrics-out" :: v :: rest ->
        metrics_out := Some v;
        go acc rest
    | "--flight-out" :: v :: rest ->
        flight_out := Some v;
        go acc rest
    | "--stage" :: v :: rest ->
        set_stage v;
        go acc rest
    | "--stage-threshold" :: v :: rest ->
        set_stage_threshold v;
        go acc rest
    | a :: rest when prefixed "--trace-out=" a ->
        trace_out := Some (tail "--trace-out=" a);
        go acc rest
    | a :: rest when prefixed "--metrics-out=" a ->
        metrics_out := Some (tail "--metrics-out=" a);
        go acc rest
    | a :: rest when prefixed "--flight-out=" a ->
        flight_out := Some (tail "--flight-out=" a);
        go acc rest
    | a :: rest when prefixed "--stage=" a ->
        set_stage (tail "--stage=" a);
        go acc rest
    | a :: rest when prefixed "--stage-threshold=" a ->
        set_stage_threshold (tail "--stage-threshold=" a);
        go acc rest
    | a :: rest -> go (a :: acc) rest
  in
  Array.of_list (go [] (Array.to_list argv))

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

(* ---- common arguments ---------------------------------------------- *)

let source_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"IDL source file.")

let idl_arg =
  let idl_conv =
    Arg.conv
      ( (fun s ->
          match Driver.idl_of_string s with
          | Some i -> Ok i
          | None ->
              Error (`Msg (Printf.sprintf "unknown IDL %S (expected %s)" s
                             (String.concat ", " Driver.idl_names)))),
        fun ppf i ->
          Format.pp_print_string ppf
            (match i with
            | Driver.Idl_corba -> "corba"
            | Driver.Idl_onc -> "onc"
            | Driver.Idl_mig -> "mig") )
  in
  Arg.(
    value
    & opt idl_conv Driver.Idl_corba
    & info [ "i"; "idl" ] ~docv:"IDL" ~doc:"Source IDL: corba, onc, or mig.")

let pres_arg =
  let pres_conv =
    Arg.conv
      ( (fun s ->
          match Driver.presentation_of_string s with
          | Some p -> Ok p
          | None ->
              Error (`Msg (Printf.sprintf "unknown presentation %S (expected %s)"
                             s (String.concat ", " Driver.presentation_names)))),
        fun ppf p ->
          Format.pp_print_string ppf
            (match p with
            | Driver.Pres_corba -> "corba-c"
            | Driver.Pres_corba_len -> "corba-len-c"
            | Driver.Pres_rpcgen -> "rpcgen-c"
            | Driver.Pres_fluke -> "fluke-c"
            | Driver.Pres_mig -> "mig-c") )
  in
  Arg.(
    value
    & opt pres_conv Driver.Pres_corba
    & info [ "p"; "presentation" ] ~docv:"PRES"
        ~doc:"Presentation style: corba-c, corba-len-c, rpcgen-c, fluke-c, or mig-c.")

let backend_arg =
  let backend_conv =
    Arg.conv
      ( (fun s ->
          match Driver.backend_of_string s with
          | Some b -> Ok b
          | None ->
              Error (`Msg (Printf.sprintf "unknown back end %S (expected %s)" s
                             (String.concat ", " Driver.backend_names)))),
        fun ppf b ->
          Format.pp_print_string ppf
            (match b with
            | Driver.Back_iiop -> "iiop"
            | Driver.Back_oncrpc -> "oncrpc"
            | Driver.Back_mach3 -> "mach3"
            | Driver.Back_fluke -> "fluke") )
  in
  Arg.(
    value
    & opt backend_conv Driver.Back_iiop
    & info [ "b"; "backend" ] ~docv:"BACKEND"
        ~doc:"Message format and transport: iiop, oncrpc, mach3, or fluke.")

(* every Encoding.t is addressable by name; the list (and so every
   diagnostic and --help string below) includes the value-dependent
   formats msgpack and cbor *)
let encoding_names =
  List.map (fun (e : Encoding.t) -> e.Encoding.name) Encoding.all

let encoding_conv =
  Arg.conv
    ( (fun s ->
        match Encoding.by_name s with
        | Some e -> Ok e
        | None ->
            Error
              (`Msg
                 (Printf.sprintf "unknown encoding %S (expected %s)" s
                    (String.concat ", " encoding_names)))),
      fun ppf (e : Encoding.t) ->
        Format.pp_print_string ppf e.Encoding.name )

let encoding_doc what =
  Printf.sprintf "%s: %s." what (String.concat ", " encoding_names)

let interface_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "interface" ] ~docv:"NAME"
        ~doc:"Interface to compile (written A::B); defaults to the only one.")

let outdir_arg =
  Arg.(
    value
    & opt string "."
    & info [ "o"; "output" ] ~docv:"DIR" ~doc:"Output directory.")

(* ---- commands ------------------------------------------------------- *)

let compile_cmd =
  let run idl pres backend interface outdir file =
    handle_diag (fun () ->
        let source = read_file file in
        let files = Driver.compile idl pres backend ~file ~source ~interface in
        let rec mkdirs dir =
          if not (Sys.file_exists dir) then begin
            mkdirs (Filename.dirname dir);
            Unix.mkdir dir 0o755
          end
        in
        mkdirs outdir;
        Runtime.write_to outdir;
        List.iter
          (fun (name, contents) ->
            let path = Filename.concat outdir name in
            let oc = open_out path in
            output_string oc contents;
            close_out oc;
            Printf.printf "wrote %s\n" path)
          files;
        Printf.printf "wrote %s\n" (Filename.concat outdir "flick_runtime.h"))
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Generate C stubs, skeleton and header.")
    Term.(
      const run $ idl_arg $ pres_arg $ backend_arg $ interface_arg $ outdir_arg
      $ source_arg)

let dump_aoi_cmd =
  let run idl file =
    handle_diag (fun () ->
        let source = read_file file in
        let spec = Driver.parse_spec idl ~file source in
        ignore (Aoi_check.check spec);
        print_string (Aoi_pp.spec_to_string spec))
  in
  Cmd.v
    (Cmd.info "dump-aoi"
       ~doc:"Parse and print the AOI intermediate representation.")
    Term.(const run $ idl_arg $ source_arg)

let dump_presc_cmd =
  let run idl pres interface file =
    handle_diag (fun () ->
        let source = read_file file in
        let pc = Driver.present idl pres ~file ~source ~interface in
        Format.printf "%a@." Pres_c.pp pc)
  in
  Cmd.v
    (Cmd.info "dump-presc"
       ~doc:"Print the PRES_C presentation description (MINT, PRES, CAST).")
    Term.(const run $ idl_arg $ pres_arg $ interface_arg $ source_arg)

let dump_plan_cmd =
  let run idl pres backend interface op decode trace forward passes encoding
      file =
    handle_diag (fun () ->
        let source = read_file file in
        let config =
          match passes with
          | None -> None
          | Some spec -> (
              match Opt_config.of_string spec with
              | Ok c -> Some c
              | Error msg -> Diag.error "dump-plan: --passes: %s" msg)
        in
        let mode =
          match forward with
          | Some name -> (
              match Driver.backend_of_string name with
              | Some dst -> Plan_dump.Forward dst
              | None ->
                  Diag.error
                    "dump-plan: --forward: unknown backend %S (one of %s)"
                    name
                    (String.concat ", " Driver.backend_names))
          | None ->
              if trace then Plan_dump.Trace
              else if decode then Plan_dump.Unmarshal
              else Plan_dump.Marshal
        in
        print_string
          (Plan_dump.render ~idl ~pres ~backend ~interface ~op ~mode ?config
             ?encoding ~file ~source ()))
  in
  let op_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "op" ] ~docv:"NAME" ~doc:"Only this operation.")
  in
  let decode_arg =
    Arg.(
      value & flag
      & info [ "decode" ]
          ~doc:
            "Print the decode (unmarshal) plan for the request instead of the \
             marshal plan.")
  in
  let trace_arg =
    Arg.(
      value & flag
      & info [ "trace-passes" ]
          ~doc:
            "Trace the optimizer pipeline instead of printing plans: one line \
             per pass with node and bounds-check counts before/after and wall \
             time, for both the encode and decode plan of each stub.  The \
             structural plan verifier runs after every pass.")
  in
  let forward_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "forward" ] ~docv:"BACKEND"
          ~doc:
            "Print the fused forward (gateway relay) plan that re-emits the \
             request under this destination backend's encoding, instead of \
             the marshal plan.  Every op line carries its copy-elision \
             provenance ($(b,# blit), $(b,# borrow), $(b,# convert), \
             $(b,# fixup), $(b,# fallback)); the footer rolls the classes \
             up.")
  in
  let passes_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "passes" ] ~docv:"SPEC"
          ~doc:
            "Optimizer pass selection: $(b,all), $(b,none), or a \
             comma-separated list of pass names; append $(b,+verify) to run \
             the plan verifier after each pass.")
  in
  let dump_encoding_arg =
    Arg.(
      value
      & opt (some encoding_conv) None
      & info [ "encoding" ] ~docv:"ENC"
          ~doc:
            (encoding_doc
               "Override the backend's wire encoding (how to see the \
                value-dependent msgpack/cbor plans)"))
  in
  Cmd.v
    (Cmd.info "dump-plan"
       ~doc:
         "Print the optimized marshal plans (chunks, blits, loops) for each \
          stub; with $(b,--decode), the symmetric unmarshal plans; with \
          $(b,--trace-passes), the per-pass optimizer trace; with \
          $(b,--forward), the fused gateway relay plan.")
    Term.(
      const run $ idl_arg $ pres_arg $ backend_arg $ interface_arg $ op_arg
      $ decode_arg $ trace_arg $ forward_arg $ passes_arg $ dump_encoding_arg
      $ source_arg)

let list_interfaces_cmd =
  let run idl file =
    handle_diag (fun () ->
        let source = read_file file in
        List.iter print_endline (Driver.interfaces idl ~file source))
  in
  Cmd.v
    (Cmd.info "list-interfaces" ~doc:"List the interfaces in a source file.")
    Term.(const run $ idl_arg $ source_arg)

let reuse_cmd =
  let run () = print_string (Reuse.render (Reuse.table1 ())) in
  Cmd.v
    (Cmd.info "reuse"
       ~doc:"Print the code-reuse table of this compiler (paper Table 1).")
    Term.(const run $ const ())

(* Exercise the whole system once — compile the paper's Bench interface,
   encode/decode its three workloads through the optimized stubs, push a
   few simulated round trips — so the registry table has every row
   populated: plan caches, wire accounting, stub latency histograms,
   simulator counters. *)
let run_builtin_workload ~enc () =
  let pc = Paper_fixtures.bench_presc `Corba in
  List.iter
    (fun which ->
      let op = Paper_fixtures.op_of_payload which in
      let spec = Paper_fixtures.request_spec pc ~op in
      let e =
        Stub_opt.compile_encoder ~enc ~mint:spec.Paper_fixtures.ms_mint
          ~named:spec.Paper_fixtures.ms_named spec.Paper_fixtures.ms_roots
      in
      let d =
        Stub_opt.compile_decoder ~enc ~mint:spec.Paper_fixtures.ms_mint
          ~named:spec.Paper_fixtures.ms_named spec.Paper_fixtures.ms_droots
      in
      let v = Paper_fixtures.payload which ~bytes:1024 in
      let buf = Mbuf.acquire () in
      for _ = 1 to 8 do
        Mbuf.reset buf;
        e buf [| v |];
        ignore (d (Mbuf.reader buf))
      done;
      Mbuf.release buf)
    [ `Ints; `Rects; `Dirents ];
  let cost =
    {
      Rpc_sim.sc_name = "flick";
      sc_marshal = (fun n -> 2e-6 +. (float_of_int n *. 2e-9));
      sc_unmarshal = (fun n -> 2e-6 +. (float_of_int n *. 2e-9));
      sc_per_call = 5e-6;
    }
  in
  ignore
    (Rpc_sim.round_trip_throughput ~net:Link.ethernet_10 ~cost
       ~msg_bytes:1024 ~rounds:4 ())

let stats_cmd =
  let run encoding file =
    handle_diag (fun () ->
        Obs.set_timing true;
        let file, source =
          match file with
          | Some f -> (f, read_file f)
          | None -> ("bench.idl", Paper_fixtures.bench_idl)
        in
        ignore
          (Driver.compile Driver.Idl_corba Driver.Pres_corba
             Driver.Back_oncrpc ~file ~source ~interface:None);
        run_builtin_workload ~enc:encoding ();
        (* A short traced serve run so the request-phase breakdown section
           of the registry has data to report. *)
        Obs_request.set_enabled true;
        ignore
          (Rpc_serve.run_workload ~enc:encoding ~requests_per_conn:32
             ~conns:4 ());
        Printf.printf "workload encoding: %s\n" encoding.Encoding.name;
        Printf.printf "staged specialization: %s (promotion threshold %d calls)\n\n"
          (if Opt_config.stage_enabled () then "on" else "off")
          (Opt_config.stage_threshold ());
        print_string (Obs.render_table ()))
  in
  let stats_encoding_arg =
    Arg.(
      value
      & opt encoding_conv Encoding.xdr
      & info [ "encoding" ] ~docv:"ENC"
          ~doc:(encoding_doc "Wire encoding for the built-in workload"))
  in
  let file_arg =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:
            "CORBA IDL file to compile before reporting (default: the paper's \
             built-in Bench interface).")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Compile an interface, run the built-in encode/decode and simulated \
          RPC workload, and print the unified metrics registry: plan-cache \
          hit rates, wire-buffer copy/borrow accounting, per-operation stub \
          latency and size histograms, simulator counters.")
    Term.(const run $ stats_encoding_arg $ file_arg)

let serve_cmd =
  let run conns requests enc max_in_flight =
    handle_diag (fun () ->
        Obs_request.set_enabled true;
        let config =
          { Rpc_serve.default_config with Rpc_serve.max_in_flight }
        in
        let p =
          Rpc_serve.run_workload ~enc ~requests_per_conn:requests ~config
            ~conns ()
        in
        let st = p.Rpc_serve.sp_stats in
        Printf.printf
          "%d connections x %d echo requests (%s, 1 KiB ints, budget %d)\n\n"
          conns requests enc.Encoding.name max_in_flight;
        Printf.printf "  completed   %8d of %d\n" p.Rpc_serve.sp_ok
          p.Rpc_serve.sp_requests;
        Printf.printf "  shed        %8d (%d gave up after retry)\n"
          st.Rpc_serve.st_shed p.Rpc_serve.sp_shed_final;
        Printf.printf "  retransmits %8d\n" p.Rpc_serve.sp_retransmits;
        Printf.printf "  throughput  %8.0f requests/s (virtual)\n"
          p.Rpc_serve.sp_rps;
        Printf.printf "  latency     %8.0f us p50, %.0f us p99\n"
          p.Rpc_serve.sp_p50_us p.Rpc_serve.sp_p99_us;
        Printf.printf "  in flight   %8d high water (budget %d)\n"
          st.Rpc_serve.st_in_flight_hw max_in_flight;
        Printf.printf "  flushes     %8d (%d replies coalesced)\n"
          st.Rpc_serve.st_flushes st.Rpc_serve.st_coalesced;
        Printf.printf "  wire        %8d bytes in, %d bytes out\n\n"
          st.Rpc_serve.st_bytes_in st.Rpc_serve.st_bytes_out;
        print_string (Obs.render_table ());
        (* Fault paths always land in the flight ring; if any did and no
           explicit --flight-out was given, dump the ring anyway so the
           evidence is not lost when the process exits. *)
        let faulted =
          List.exists
            (fun r -> Obs_request.outcome r <> Obs_request.Rok)
            (Obs_request.ring_records ())
        in
        if !flight_out = None && faulted then begin
          let path = "flick-flight.json" in
          write_file path (Obs_request.flight_to_json ());
          Printf.printf "\nfaulted requests in flight ring; wrote %s\n" path
        end)
  in
  let conns_arg =
    Arg.(
      value & opt int 8
      & info [ "conns" ] ~docv:"N" ~doc:"Number of simulated connections.")
  in
  let requests_arg =
    Arg.(
      value & opt int 200
      & info [ "requests" ] ~docv:"N" ~doc:"Echo requests per connection.")
  in
  let encoding_arg =
    Arg.(
      value
      & opt encoding_conv Encoding.xdr
      & info [ "encoding" ] ~docv:"ENC"
          ~doc:(encoding_doc "Wire encoding"))
  in
  let budget_arg =
    Arg.(
      value
      & opt int Rpc_serve.default_config.Rpc_serve.max_in_flight
      & info [ "max-in-flight" ] ~docv:"N"
          ~doc:"Backpressure budget; requests beyond it are shed.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the concurrent RPC server loop (socket-free, simulated time): \
          N connections issue echo requests through the compiled marshal \
          plans, with connection demux, bounded in-flight backpressure, and \
          coalesced reply flushes.  Prints throughput, shed rate, latency \
          percentiles, and the metrics registry.")
    Term.(const run $ conns_arg $ requests_arg $ encoding_arg $ budget_arg)

let main =
  Cmd.group
    (Cmd.info "flick" ~version:"1.0"
       ~doc:
         "A flexible, optimizing IDL compiler (OCaml reproduction of Eide et \
          al., PLDI 1997).  $(b,--trace-out=FILE) (any position) writes a \
          Chrome trace_event JSON of the run's compile stages, optimizer \
          passes and simulated RPCs; $(b,--metrics-out=FILE) writes the \
          metrics registry as JSON lines; $(b,--flight-out=FILE) enables \
          the request flight recorder and writes its ring as JSON.  \
          $(b,--stage=on|off) and \
          $(b,--stage-threshold=N) (any position) control the tier-1 \
          staged plan specializer: whether hot plans are promoted to \
          flat closures, and after how many calls.")
    [
      compile_cmd; dump_aoi_cmd; dump_presc_cmd; dump_plan_cmd;
      list_interfaces_cmd; reuse_cmd; stats_cmd; serve_cmd;
    ]

let () =
  let argv = filter_obs_flags Sys.argv in
  if !trace_out <> None then begin
    Obs_trace.set_enabled true;
    Obs.set_timing true
  end;
  if !metrics_out <> None then Obs.set_timing true;
  if !flight_out <> None then Obs_request.set_enabled true;
  let code = Cmd.eval ~argv main in
  (match !trace_out with
  | Some path -> write_file path (Obs_trace.to_chrome_json ())
  | None -> ());
  (match !metrics_out with
  | Some path -> write_file path (Obs.to_jsonl ())
  | None -> ());
  (match !flight_out with
  | Some path -> write_file path (Obs_request.flight_to_json ())
  | None -> ());
  exit code
