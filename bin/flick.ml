(* The flick command-line compiler.

   flick compile --idl corba --presentation corba-c --backend iiop \
     mail.idl -o out/
   flick dump-aoi --idl onc service.x
   flick dump-presc --idl corba --presentation rpcgen-c mail.idl
   flick list-interfaces --idl corba mail.idl *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let handle_diag f =
  try f () with
  | Diag.Error d ->
      Printf.eprintf "%s\n" (Diag.to_string d);
      exit 1
  | Sys_error msg ->
      Printf.eprintf "flick: %s\n" msg;
      exit 1

(* ---- common arguments ---------------------------------------------- *)

let source_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"IDL source file.")

let idl_arg =
  let idl_conv =
    Arg.conv
      ( (fun s ->
          match Driver.idl_of_string s with
          | Some i -> Ok i
          | None ->
              Error (`Msg (Printf.sprintf "unknown IDL %S (expected %s)" s
                             (String.concat ", " Driver.idl_names)))),
        fun ppf i ->
          Format.pp_print_string ppf
            (match i with
            | Driver.Idl_corba -> "corba"
            | Driver.Idl_onc -> "onc"
            | Driver.Idl_mig -> "mig") )
  in
  Arg.(
    value
    & opt idl_conv Driver.Idl_corba
    & info [ "i"; "idl" ] ~docv:"IDL" ~doc:"Source IDL: corba, onc, or mig.")

let pres_arg =
  let pres_conv =
    Arg.conv
      ( (fun s ->
          match Driver.presentation_of_string s with
          | Some p -> Ok p
          | None ->
              Error (`Msg (Printf.sprintf "unknown presentation %S (expected %s)"
                             s (String.concat ", " Driver.presentation_names)))),
        fun ppf p ->
          Format.pp_print_string ppf
            (match p with
            | Driver.Pres_corba -> "corba-c"
            | Driver.Pres_corba_len -> "corba-len-c"
            | Driver.Pres_rpcgen -> "rpcgen-c"
            | Driver.Pres_fluke -> "fluke-c"
            | Driver.Pres_mig -> "mig-c") )
  in
  Arg.(
    value
    & opt pres_conv Driver.Pres_corba
    & info [ "p"; "presentation" ] ~docv:"PRES"
        ~doc:"Presentation style: corba-c, corba-len-c, rpcgen-c, fluke-c, or mig-c.")

let backend_arg =
  let backend_conv =
    Arg.conv
      ( (fun s ->
          match Driver.backend_of_string s with
          | Some b -> Ok b
          | None ->
              Error (`Msg (Printf.sprintf "unknown back end %S (expected %s)" s
                             (String.concat ", " Driver.backend_names)))),
        fun ppf b ->
          Format.pp_print_string ppf
            (match b with
            | Driver.Back_iiop -> "iiop"
            | Driver.Back_oncrpc -> "oncrpc"
            | Driver.Back_mach3 -> "mach3"
            | Driver.Back_fluke -> "fluke") )
  in
  Arg.(
    value
    & opt backend_conv Driver.Back_iiop
    & info [ "b"; "backend" ] ~docv:"BACKEND"
        ~doc:"Message format and transport: iiop, oncrpc, mach3, or fluke.")

let interface_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "interface" ] ~docv:"NAME"
        ~doc:"Interface to compile (written A::B); defaults to the only one.")

let outdir_arg =
  Arg.(
    value
    & opt string "."
    & info [ "o"; "output" ] ~docv:"DIR" ~doc:"Output directory.")

(* ---- commands ------------------------------------------------------- *)

let compile_cmd =
  let run idl pres backend interface outdir file =
    handle_diag (fun () ->
        let source = read_file file in
        let files = Driver.compile idl pres backend ~file ~source ~interface in
        let rec mkdirs dir =
          if not (Sys.file_exists dir) then begin
            mkdirs (Filename.dirname dir);
            Unix.mkdir dir 0o755
          end
        in
        mkdirs outdir;
        Runtime.write_to outdir;
        List.iter
          (fun (name, contents) ->
            let path = Filename.concat outdir name in
            let oc = open_out path in
            output_string oc contents;
            close_out oc;
            Printf.printf "wrote %s\n" path)
          files;
        Printf.printf "wrote %s\n" (Filename.concat outdir "flick_runtime.h"))
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Generate C stubs, skeleton and header.")
    Term.(
      const run $ idl_arg $ pres_arg $ backend_arg $ interface_arg $ outdir_arg
      $ source_arg)

let dump_aoi_cmd =
  let run idl file =
    handle_diag (fun () ->
        let source = read_file file in
        let spec = Driver.parse_spec idl ~file source in
        ignore (Aoi_check.check spec);
        print_string (Aoi_pp.spec_to_string spec))
  in
  Cmd.v
    (Cmd.info "dump-aoi"
       ~doc:"Parse and print the AOI intermediate representation.")
    Term.(const run $ idl_arg $ source_arg)

let dump_presc_cmd =
  let run idl pres interface file =
    handle_diag (fun () ->
        let source = read_file file in
        let pc = Driver.present idl pres ~file ~source ~interface in
        Format.printf "%a@." Pres_c.pp pc)
  in
  Cmd.v
    (Cmd.info "dump-presc"
       ~doc:"Print the PRES_C presentation description (MINT, PRES, CAST).")
    Term.(const run $ idl_arg $ pres_arg $ interface_arg $ source_arg)

let dump_plan_cmd =
  let run idl pres backend interface op decode file =
    handle_diag (fun () ->
        let source = read_file file in
        let pc = Driver.present idl pres ~file ~source ~interface in
        let tr = Driver.transport_of backend in
        let stubs =
          match op with
          | None -> pc.Pres_c.pc_stubs
          | Some name ->
              List.filter
                (fun st -> st.Pres_c.os_op.Aoi.op_name = name)
                pc.Pres_c.pc_stubs
        in
        List.iter
          (fun (st : Pres_c.op_stub) ->
            let request_params =
              List.filter
                (fun (pi : Pres_c.param_info) ->
                  match pi.Pres_c.pi_dir with
                  | Aoi.In | Aoi.Inout -> true
                  | Aoi.Out -> false)
                st.Pres_c.os_params
            in
            if decode then begin
              (* the server-side view of the same request message *)
              let droots =
                List.map
                  (fun (pi : Pres_c.param_info) ->
                    Dplan_compile.Dvalue (pi.Pres_c.pi_mint, pi.Pres_c.pi_pres))
                  request_params
              in
              let plan =
                Plan_cache.dplan ~enc:tr.Backend_base.tr_enc
                  ~mint:pc.Pres_c.pc_mint ~named:pc.Pres_c.pc_named droots
              in
              Format.printf "=== unmarshal plan: %s (%s) ===@.%a@."
                st.Pres_c.os_client_name tr.Backend_base.tr_name Dplan.pp_plan
                plan
            end
            else begin
              let roots =
                List.map
                  (fun (pi : Pres_c.param_info) ->
                    Plan_compile.Rvalue
                      ( Mplan.Rparam
                          {
                            index = 0;
                            name = pi.Pres_c.pi_name;
                            deref = pi.Pres_c.pi_byref;
                          },
                        pi.Pres_c.pi_mint,
                        pi.Pres_c.pi_pres ))
                  request_params
              in
              let plan =
                Plan_cache.plan ~enc:tr.Backend_base.tr_enc
                  ~mint:pc.Pres_c.pc_mint ~named:pc.Pres_c.pc_named roots
              in
              Format.printf "=== marshal plan: %s (%s) ===@.%a@."
                st.Pres_c.os_client_name tr.Backend_base.tr_name Mplan.pp
                plan.Plan_compile.p_ops;
              List.iter
                (fun (name, ops) ->
                  Format.printf "--- subroutine %s ---@.%a@." name Mplan.pp ops)
                plan.Plan_compile.p_subs
            end)
          stubs)
  in
  let op_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "op" ] ~docv:"NAME" ~doc:"Only this operation.")
  in
  let decode_arg =
    Arg.(
      value & flag
      & info [ "decode" ]
          ~doc:
            "Print the decode (unmarshal) plan for the request instead of the \
             marshal plan.")
  in
  Cmd.v
    (Cmd.info "dump-plan"
       ~doc:
         "Print the optimized marshal plans (chunks, blits, loops) for each \
          stub; with $(b,--decode), the symmetric unmarshal plans.")
    Term.(
      const run $ idl_arg $ pres_arg $ backend_arg $ interface_arg $ op_arg
      $ decode_arg $ source_arg)

let list_interfaces_cmd =
  let run idl file =
    handle_diag (fun () ->
        let source = read_file file in
        List.iter print_endline (Driver.interfaces idl ~file source))
  in
  Cmd.v
    (Cmd.info "list-interfaces" ~doc:"List the interfaces in a source file.")
    Term.(const run $ idl_arg $ source_arg)

let reuse_cmd =
  let run () = print_string (Reuse.render (Reuse.table1 ())) in
  Cmd.v
    (Cmd.info "reuse"
       ~doc:"Print the code-reuse table of this compiler (paper Table 1).")
    Term.(const run $ const ())

let main =
  Cmd.group
    (Cmd.info "flick" ~version:"1.0"
       ~doc:
         "A flexible, optimizing IDL compiler (OCaml reproduction of Eide et \
          al., PLDI 1997).")
    [
      compile_cmd; dump_aoi_cmd; dump_presc_cmd; dump_plan_cmd;
      list_interfaces_cmd; reuse_cmd;
    ]

let () = exit (Cmd.eval main)
