# Build, test, and smoke-benchmark entry points (used by CI).

.PHONY: all build test test-verify bench-smoke bench ci

all: build

build:
	dune build

test:
	dune runtest

# The whole suite again with the structural plan verifier running
# after every optimizer pass (Opt_config.default reads the variable).
# The verify flag is not part of plan-cache keys, so this exercises
# exactly the same pipelines and cache behavior as the default run.
test-verify:
	FLICK_VERIFY_PLANS=1 dune runtest --force

# The fast artifacts: the plan-optimizer/cache report (BENCH_1.json),
# the scatter-gather wire report (BENCH_2.json), the decode-plan
# report (BENCH_3.json), the full-matrix pass-trace report (merged
# into BENCH_1.json), and the concurrent-server sweep (BENCH_4.json);
# the pipeline/verifier/engine-equality/pin/scaling/backpressure
# self-checks make the run exit non-zero on any regression.
# check_bench then re-parses every BENCH_*.json and fails on any
# recorded self-check failure or malformed serve sweep.
bench-smoke:
	dune exec bench/main.exe -- planopt sgwire decplan tracematrix serve --smoke
	dune exec bench/check_bench.exe

# Every artifact at default sizes (see EXPERIMENTS.md; --full for
# paper-scale sweeps).
bench:
	dune exec bench/main.exe

ci: build test test-verify bench-smoke
