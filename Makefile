# Build, test, and smoke-benchmark entry points (used by CI).

.PHONY: all build test bench-smoke bench ci

all: build

build:
	dune build

test:
	dune runtest

# The fast artifacts: the plan-optimizer/cache report (BENCH_1.json),
# the scatter-gather wire report (BENCH_2.json), and the decode-plan
# report (BENCH_3.json); the engine equality/zero-copy self-checks in
# the latter two make the run exit non-zero on failure.
bench-smoke:
	dune exec bench/main.exe -- planopt sgwire decplan --smoke

# Every artifact at default sizes (see EXPERIMENTS.md; --full for
# paper-scale sweeps).
bench:
	dune exec bench/main.exe

ci: build test bench-smoke
