# Build, test, and smoke-benchmark entry points (used by CI).

.PHONY: all build test bench-smoke bench ci

all: build

build:
	dune build

test:
	dune runtest

# The fast artifacts: the plan-optimizer/cache report (BENCH_1.json)
# and the scatter-gather wire report (BENCH_2.json, whose engine
# byte-equality self-checks make the run exit non-zero on failure).
bench-smoke:
	dune exec bench/main.exe -- planopt sgwire --smoke

# Every artifact at default sizes (see EXPERIMENTS.md; --full for
# paper-scale sweeps).
bench:
	dune exec bench/main.exe

ci: build test bench-smoke
