# Build, test, and smoke-benchmark entry points (used by CI).

.PHONY: all build test test-verify test-tier0 bench-smoke bench ci

all: build

build:
	dune build

test:
	dune runtest

# The whole suite again with the structural plan verifier running
# after every optimizer pass (Opt_config.default reads the variable).
# The verify flag is not part of plan-cache keys, so this exercises
# exactly the same pipelines and cache behavior as the default run.
test-verify:
	FLICK_VERIFY_PLANS=1 dune runtest --force

# The whole suite with the tier-1 staged specializer disabled
# (FLICK_STAGE=0), so the tier-0 interpreter path — the permanent
# fallback for unstageable plans — stays fully tested even though
# staging is on by default.
test-tier0:
	FLICK_STAGE=0 dune runtest --force

# The fast artifacts: the plan-optimizer/cache report (BENCH_1.json),
# the scatter-gather wire report (BENCH_2.json), the decode-plan
# report (BENCH_3.json), the full-matrix pass-trace report (merged
# into BENCH_1.json), the concurrent-server sweep (BENCH_4.json), and
# the tiered-execution report (BENCH_5.json) with its staged-vs-tier-0
# speedup gate, and the forward-relay report (BENCH_6.json) with its
# fused-vs-materialize throughput and zero-copy gates; the pipeline/
# verifier/engine-equality/pin/scaling/backpressure/byte-identity
# self-checks make the run exit non-zero on any regression.  The
# gateway artifact runs twice: first with fusion forced off
# (--no-forward), proving the materialize fallback still relays every
# cell byte-identically, then fused, which is the BENCH_6.json that
# check_bench gates on.  The value-dependent-encoding report
# (BENCH_7.json) runs the {msgpack,cbor} parity matrix with verifier,
# byte-identity, decode-equality and whole-message-consumption checks
# per cell.  The request-tracing report (BENCH_8.json) runs the phase
# attribution sweep with its exact phase-sum == client-RTT
# reconciliation (direct and two-hop gateway), exemplar-coverage, and
# disabled-recorder overhead gates; it must run last in the process,
# since its recorder-absent baseline is the state before the recorder
# is ever enabled.  check_bench re-parses every BENCH_*.json and fails
# on any recorded self-check failure, malformed serve sweep,
# missing/failed stage or gateway gate, unsound selfdesc matrix, or
# unreconciled/uncovered tail report.
bench-smoke:
	dune exec bench/main.exe -- gateway --smoke --no-forward
	dune exec bench/main.exe -- planopt sgwire decplan tracematrix serve stage gateway selfdesc tail --smoke
	dune exec bench/check_bench.exe

# Every artifact at default sizes (see EXPERIMENTS.md; --full for
# paper-scale sweeps).
bench:
	dune exec bench/main.exe

ci: build test test-verify test-tier0 bench-smoke
