# Build, test, and smoke-benchmark entry points (used by CI).

.PHONY: all build test bench-smoke bench ci

all: build

build:
	dune build

test:
	dune runtest

# The fast plan-optimizer/cache artifact: node counts, hit rates, and a
# small throughput sample, written to BENCH_1.json.
bench-smoke:
	dune exec bench/main.exe -- planopt --smoke

# Every artifact at default sizes (see EXPERIMENTS.md; --full for
# paper-scale sweeps).
bench:
	dune exec bench/main.exe

ci: build test bench-smoke
