(* Quickstart: the paper's introductory Mail example, end to end.

   Parses the CORBA IDL from section 1, presents it with the CORBA C
   mapping, and generates IIOP client stubs — the same
   [void Mail_send(Mail obj, char *msg)] contract the paper shows.
   Then does the same from the equivalent ONC RPC source with the
   rpcgen presentation over XDR, demonstrating the kit's mix-and-match
   flexibility.

   Run with: dune exec examples/quickstart.exe *)

let section title =
  Printf.printf "\n=== %s ===\n" title

let () =
  section "CORBA IDL input (paper, section 1)";
  print_string Paper_fixtures.mail_corba;
  print_newline ();

  let spec = Corba_parser.parse ~file:"mail.idl" Paper_fixtures.mail_corba in
  let pc = Presgen_corba.generate spec [ "Mail" ] in

  section "the programmer's contract (generated header)";
  print_string (Backend_base.generate_header Be_iiop.transport pc);

  section "the optimized marshal plan for Mail_send over IIOP";
  let st = List.hd pc.Pres_c.pc_stubs in
  let plan =
    Plan_compile.compile ~enc:Encoding.cdr ~mint:pc.Pres_c.pc_mint
      ~named:pc.Pres_c.pc_named
      [
        Plan_compile.Rvalue
          ( Mplan.Rparam { index = 0; name = "msg"; deref = false },
            (List.hd st.Pres_c.os_params).Pres_c.pi_mint,
            (List.hd st.Pres_c.os_params).Pres_c.pi_pres );
      ]
  in
  Format.printf "%a@." Mplan.pp plan.Plan_compile.p_ops;

  section "generated IIOP client stub";
  print_string (Backend_base.generate_client Be_iiop.transport pc);

  section "the same interface from ONC RPC IDL, rpcgen presentation, XDR";
  print_string Paper_fixtures.mail_onc;
  print_newline ();
  let spec2 = Onc_parser.parse ~file:"mail.x" Paper_fixtures.mail_onc in
  let pc2 = Presgen_rpcgen.generate spec2 [ "Mail"; "MailVers" ] in
  print_string (Backend_base.generate_header Be_xdr.transport pc2)
