(* Mix and match: one interface, three presentations, four back ends.

   The paper's central flexibility claim is that front ends,
   presentation generators and back ends combine freely.  This example
   takes the ONC RPC Mail service, runs it through the rpcgen AND the
   CORBA presentation generators, and generates stubs via all four
   transports, printing the stub names and generated code sizes.

   Run with: dune exec examples/cross_idl.exe *)

let () =
  let spec = Onc_parser.parse ~file:"mail.x" Paper_fixtures.mail_onc in
  let presentations =
    [
      ("rpcgen-c", Presgen_rpcgen.generate spec [ "Mail"; "MailVers" ]);
      ("corba-c", Presgen_corba.generate spec [ "Mail"; "MailVers" ]);
      ("fluke-c", Presgen_fluke.generate spec [ "Mail"; "MailVers" ]);
    ]
  in
  let backends =
    [
      ("iiop", Be_iiop.generate);
      ("oncrpc", Be_xdr.generate);
      ("mach3", Be_mach.generate);
      ("fluke", Be_fluke.generate);
    ]
  in
  Printf.printf "%-10s %-12s %-24s %8s %8s %8s\n" "pres." "backend"
    "client stub" "hdr" "client" "server";
  List.iter
    (fun (pname, pc) ->
      let stub = (List.hd pc.Pres_c.pc_stubs).Pres_c.os_client_name in
      List.iter
        (fun (bname, gen) ->
          match gen pc with
          | [ (_, h); (_, c); (_, s) ] ->
              Printf.printf "%-10s %-12s %-24s %7dB %7dB %7dB\n" pname bname
                stub (String.length h) (String.length c) (String.length s)
          | _ -> assert false)
        backends)
    presentations;
  print_newline ();
  print_endline
    "Every combination above is real generated C; the test suite compiles \
     each with gcc.";
  print_endline
    "The presentation decides the programmer's contract (stub names, calling \
     conventions);";
  print_endline
    "the back end decides the bytes on the wire - independently, as in the \
     paper's Figure 1."
