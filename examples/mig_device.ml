(* The MIG path: a Mach device subsystem compiled to Mach 3 typed
   message stubs (the paper's rigid-but-fast comparison point).

   Run with: dune exec examples/mig_device.exe *)

let device_defs =
  "subsystem device 2800;\n\
   type dev_buf = array[*:8192] of char;\n\
   type dev_status = array[16] of int;\n\
   routine device_open(in mode : int);\n\
   routine device_read(in offset : int; in count : int; out data : dev_buf);\n\
   routine device_write(in offset : int; in data : dev_buf);\n\
   routine device_get_status(out status : dev_status);\n\
   simpleroutine device_shutdown(in code : int);"

let () =
  print_endline "=== MIG subsystem ===";
  print_endline device_defs;
  let spec = Mig_parser.parse ~file:"device.defs" device_defs in
  let pc = Presgen_mig.generate spec in
  Printf.printf "\nsubsystem %s, message ids from %Ld\n"
    spec.Mig_parser.sub_name spec.Mig_parser.sub_base;
  Format.printf "%a@." Pres_c.pp_summary pc;
  print_endline "\n=== generated header (Mach 3 typed messages) ===";
  print_string (Backend_base.generate_header Be_mach.transport pc);
  print_endline "\n=== why MIG is the rigid end of the spectrum ===";
  (match
     Mig_parser.parse ~file:"bad.defs"
       "subsystem bad 1;\nroutine f(in rects : array[*:100] of array[2] of \
        int);"
   with
  | _ -> ()
  | exception Diag.Error d ->
      Printf.printf "MIG front end rejects structured payloads:\n  %s\n"
        (Diag.to_string d));
  print_endline
    "\n(The paper's Figure 7 experiment sends integer arrays precisely \
     because MIG cannot express arrays of non-atomic types.)"
