(* A directory service: the interface from the paper's evaluation,
   exercised end to end through the executable stub engines.

   A client marshals a read_dir request with the optimized engine; the
   "server" demultiplexes and unmarshals it, produces directory
   entries, marshals the reply; and the client decodes it.  Along the
   way we print the message bytes and compare the three engines on the
   same messages.

   Run with: dune exec examples/directory_service.exe *)

let hexdump bytes =
  let n = Bytes.length bytes in
  let rec rows off =
    if off < n then begin
      let len = min 16 (n - off) in
      Printf.printf "  %04x  " off;
      for i = 0 to len - 1 do
        Printf.printf "%02x " (Char.code (Bytes.get bytes (off + i)))
      done;
      print_string (String.make (3 * (16 - len) + 2) ' ');
      for i = 0 to len - 1 do
        let c = Bytes.get bytes (off + i) in
        print_char (if Char.code c >= 32 && Char.code c < 127 then c else '.')
      done;
      print_newline ();
      rows (off + 16)
    end
  in
  rows 0

let () =
  let pc = Paper_fixtures.dir_presc `Corba in
  let enc = Encoding.cdr in
  let mint = pc.Pres_c.pc_mint in
  let named = pc.Pres_c.pc_named in

  (* --- client side: marshal a read_dir("/home/jay") request --------- *)
  let spec = Paper_fixtures.request_spec pc ~op:"read_dir" in
  let encode = Stub_opt.compile_encoder ~enc ~mint ~named spec.Paper_fixtures.ms_roots in
  let buf = Mbuf.create 64 in
  encode buf [| Value.Vstring "/home/jay" |];
  let request = Mbuf.contents buf in
  Printf.printf "request message (%d bytes, GIOP-style op key + CDR body):\n"
    (Bytes.length request);
  hexdump request;

  (* --- server side: decode the request ------------------------------ *)
  let decode =
    Stub_opt.compile_decoder ~enc ~mint ~named spec.Paper_fixtures.ms_droots
  in
  let args = decode (Mbuf.reader_of_bytes request) in
  (match args.(0) with
  | Value.Vstring path -> Printf.printf "\nserver unmarshaled path: %S\n" path
  | _ -> assert false);

  (* --- server side: produce and marshal the reply ------------------- *)
  let st =
    match Pres_c.find_stub pc "read_dir" with Some s -> s | None -> assert false
  in
  let ret = match st.Pres_c.os_return with Some r -> r | None -> assert false in
  let entries = Workload.dirent_array 1024 in
  let reply_roots =
    [
      Plan_compile.Rconst_int (0L, Encoding.Kint { bits = 32; signed = false });
      Plan_compile.Rvalue
        ( Mplan.Rparam { index = 0; name = "_ret"; deref = false },
          ret.Pres_c.pi_mint, ret.Pres_c.pi_pres );
    ]
  in
  let encode_reply = Stub_opt.compile_encoder ~enc ~mint ~named reply_roots in
  let rbuf = Mbuf.create 256 in
  encode_reply rbuf [| entries |];
  Printf.printf "\nreply message: %d bytes (%d directory entries of ~256 \
                 encoded bytes)\n"
    (Mbuf.pos rbuf)
    (match entries with Value.Varray a -> Array.length a | _ -> 0);

  (* --- client side: decode the reply -------------------------------- *)
  let decode_reply =
    Stub_opt.compile_decoder ~enc ~mint ~named
      [
        Stub_opt.Dconst_int (0L, Encoding.Kint { bits = 32; signed = false });
        Stub_opt.Dvalue (ret.Pres_c.pi_mint, ret.Pres_c.pi_pres);
      ]
  in
  let out = decode_reply (Mbuf.reader rbuf) in
  Printf.printf "round trip preserved the entries: %B\n"
    (Value.equal entries out.(0));

  (* --- all three engines, same bytes -------------------------------- *)
  let engines =
    [
      ( "optimized (Flick)",
        fun ~enc ~mint ~named roots ->
          Stub_opt.compile_encoder ~enc ~mint ~named roots );
      ( "rpcgen-shape",
        fun ~enc ~mint ~named roots ->
          Stub_naive.compile_encoder ~config:Stub_naive.default_config ~enc
            ~mint ~named roots );
      ("interpretive (ILU-shape)", Stub_interp.compile_encoder);
    ]
  in
  print_newline ();
  List.iter
    (fun (name, compile) ->
      let e = compile ~enc ~mint ~named reply_roots in
      let b = Mbuf.create 256 in
      e b [| entries |];
      Printf.printf "%-26s produced %d bytes (identical: %B)\n" name
        (Mbuf.pos b)
        (Bytes.equal (Mbuf.contents b) (Mbuf.contents rbuf)))
    engines;

  (* --- and a quick look at who is fastest ---------------------------- *)
  let big = Workload.dirent_array 65536 in
  print_newline ();
  List.iter
    (fun (name, compile) ->
      let e = compile ~enc ~mint ~named reply_roots in
      let b = Mbuf.create 65536 in
      let t0 = Unix.gettimeofday () in
      let iters = 200 in
      for _ = 1 to iters do
        Mbuf.reset b;
        e b [| big |]
      done;
      let dt = Unix.gettimeofday () -. t0 in
      Printf.printf "%-26s marshals 64KB of directory entries at %7.1f MB/s\n"
        name
        (float_of_int (Mbuf.pos b * iters) /. dt /. 1e6))
    engines
