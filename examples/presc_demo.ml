(* The textual equivalent of the paper's Figure 2: two examples of
   PRES_C connecting C data with on-the-wire encodings.

   Example 1: a C int linked to a 4-byte big-endian wire integer.
   Example 2: a C string (char pointer) linked to a counted array of packed
   characters, the OPT_STR-style transformation.

   Run with: dune exec examples/presc_demo.exe *)

let () =
  let mint = Mint.create () in

  print_endline "=== Example 1: 'int x' <-> 4-byte big-endian integer ===";
  let int_idx = Mint.int32 mint in
  Format.printf "MINT: %a@." (Mint.pp mint) int_idx;
  Format.printf "PRES: %a@." Pres.pp Pres.Direct;
  Format.printf "CAST: %s@." (Cast_pp.ctype Cast.int32_t "x");
  let plan =
    Plan_compile.compile ~enc:Encoding.cdr ~mint ~named:[]
      [
        Plan_compile.Rvalue
          (Mplan.Rparam { index = 0; name = "x"; deref = false }, int_idx,
           Pres.Direct);
      ]
  in
  Format.printf "plan over CDR:@.%a@.@." Mplan.pp plan.Plan_compile.p_ops;

  print_endline "=== Example 2: 'char *str' <-> counted array of char ===";
  let str_idx = Mint.string_ mint ~max_len:None in
  Format.printf "MINT: %a@." (Mint.pp mint) str_idx;
  Format.printf "PRES: %a@." Pres.pp Pres.Terminated_string;
  Format.printf "CAST: %s@." (Cast_pp.ctype (Cast.Tptr Cast.Tchar) "str");
  let plan =
    Plan_compile.compile ~enc:Encoding.cdr ~mint ~named:[]
      [
        Plan_compile.Rvalue
          (Mplan.Rparam { index = 0; name = "str"; deref = false }, str_idx,
           Pres.Terminated_string);
      ]
  in
  Format.printf "plan over CDR:@.%a@.@." Mplan.pp plan.Plan_compile.p_ops;

  (* and the C code each becomes *)
  print_endline "=== the C statements the IIOP back end emits for example 2 ===";
  List.iter
    (fun s -> print_string (Cast_pp.stmt ~indent:1 s))
    (Cgen.marshal_stmts ~enc:Encoding.cdr plan.Plan_compile.p_ops)
