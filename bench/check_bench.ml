(* CI validator for the benchmark artifact files.

   Parses every BENCH_*.json in the working directory with the repo's
   own JSON reader (Obs_json — the container ships no JSON library) and
   requires of each:
   - it parses as one JSON object;
   - it names its "artifact";
   - "self_check_failed" is present and false;
   - every other "*_failed" member (e.g. "tracematrix_failed", merged
     in by artifacts that share a file) is false;
   - the server-loop artifact ("serve", BENCH_4.json) additionally
     carries a structurally sound sweep: at least 4 points with
     strictly increasing connection counts, positive throughput
     everywhere, and shed rates inside [0, 1];
   - the tiered-execution artifact ("stage", BENCH_5.json) additionally
     carries its full measurement matrix (>= 9 rows, each with both
     per-side speedups present and positive) and a passed speedup gate
     with its threshold keys intact;
   - the forward-relay artifact ("gateway", BENCH_6.json) additionally
     carries byte-identical measurement cells, a clean simulator round
     trip, and — whenever fusion was enabled — a passed throughput +
     zero-copy gate with its 1.5x threshold intact (a --no-forward run
     records the gate as not applied, which is accepted);
   - the value-dependent-encoding artifact ("selfdesc", BENCH_7.json)
     additionally carries its full {msgpack,cbor} x workload x size
     matrix (>= 12 rows), every cell byte-identical across engine
     tiers, decoded back to an equal value with the whole message
     consumed, and both plans clean under the verifier;
   - the request-tracing artifact ("tail", BENCH_8.json) additionally
     carries a sweep whose phase shares sum to 1 with p99 exemplar
     coverage, exact phase-sum == client-RTT reconciliation records
     (direct and two-hop gateway, zero failures), and a passed
     disabled-recorder overhead gate at the pinned 3%.
   Exits non-zero on any violation, or when no artifact files exist at
   all — `make ci` runs the smoke benchmarks first, so an empty
   directory means they silently wrote nothing. *)

let failed = ref false

let err fmt =
  Printf.ksprintf
    (fun s ->
      failed := true;
      Printf.printf "check_bench: %s\n" s)
    fmt

let read_all path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* The serve artifact feeds regression gating, so its shape is pinned
   here too: a malformed sweep must fail CI even if the benchmark's own
   self-checks were green. *)
let check_serve_sweep path j =
  match Obs_json.member "sweep" j with
  | None -> err "%s: serve artifact is missing its \"sweep\"" path
  | Some sweep -> (
      match Obs_json.to_list sweep with
      | None -> err "%s: \"sweep\" is not an array" path
      | Some points ->
          if List.length points < 4 then
            err "%s: sweep has %d points, want >= 4" path (List.length points);
          let last_conns = ref 0 in
          List.iteri
            (fun i p ->
              let num key =
                match Obs_json.member key p with
                | Some v -> Obs_json.to_float v
                | None -> None
              in
              match (num "conns", num "rps", num "shed_rate") with
              | Some conns, Some rps, Some shed ->
                  if int_of_float conns <= !last_conns then
                    err "%s: sweep[%d]: conns %.0f not increasing" path i conns;
                  last_conns := int_of_float conns;
                  if rps <= 0. then
                    err "%s: sweep[%d]: non-positive rps %.1f" path i rps;
                  if shed < 0. || shed > 1. then
                    err "%s: sweep[%d]: shed_rate %.4f outside [0,1]" path i
                      shed
              | _ ->
                  err "%s: sweep[%d]: missing conns/rps/shed_rate" path i)
            points)

(* The stage artifact carries the tentpole's speedup gate, so its shape
   is pinned: the gate keys and a full measurement matrix must be
   present and sound even when the benchmark's own checks were green. *)
let check_stage path j =
  let num obj key =
    match Obs_json.member key obj with
    | Some v -> Obs_json.to_float v
    | None -> None
  in
  (match Obs_json.member "rows" j with
  | None -> err "%s: stage artifact is missing its \"rows\"" path
  | Some rows -> (
      match Obs_json.to_list rows with
      | None -> err "%s: \"rows\" is not an array" path
      | Some rows ->
          (* 3 encodings x 3 workloads x >= 1 size, each row carrying
             both sides; the smoke run measures one size, --full two *)
          if List.length rows < 9 then
            err "%s: stage matrix has %d rows, want >= 9" path
              (List.length rows);
          List.iteri
            (fun i row ->
              match
                (num row "encode_speedup", num row "decode_speedup")
              with
              | Some e, Some d ->
                  if e <= 0. || d <= 0. then
                    err "%s: rows[%d]: non-positive speedup (%.3f, %.3f)"
                      path i e d
              | _ -> err "%s: rows[%d]: missing per-side speedups" path i)
            rows));
  match Obs_json.member "gate" j with
  | None -> err "%s: stage artifact is missing its \"gate\"" path
  | Some gate -> (
      (match (num gate "min_speedup", num gate "required_encodings") with
      | Some ms, Some req ->
          if ms < 1.15 then
            err "%s: gate min_speedup %.2f below the pinned 1.15" path ms;
          if int_of_float req < 2 then
            err "%s: gate required_encodings %.0f below the pinned 2" path req
      | _ -> err "%s: gate is missing min_speedup/required_encodings" path);
      match Obs_json.member "passed" gate with
      | Some (Obs_json.Bool true) -> ()
      | Some (Obs_json.Bool false) -> err "%s: speedup gate failed" path
      | _ -> err "%s: gate is missing \"passed\"" path)

(* The gateway artifact carries the forwarding tentpole's gates, so its
   shape is pinned: every measured cell must have relayed
   byte-identically, the simulator round trip must have answered every
   request, and when fusion was on the throughput/zero-copy gate must
   exist with its pinned threshold and have passed. *)
let check_gateway path j =
  let num obj key =
    match Obs_json.member key obj with
    | Some v -> Obs_json.to_float v
    | None -> None
  in
  (match Obs_json.member "rows" j with
  | None -> err "%s: gateway artifact is missing its \"rows\"" path
  | Some rows -> (
      match Obs_json.to_list rows with
      | None -> err "%s: \"rows\" is not an array" path
      | Some rows ->
          (* >= 3 encoding pairs x >= 1 workload x >= 1 size even in
             smoke mode *)
          if List.length rows < 3 then
            err "%s: gateway sweep has %d rows, want >= 3" path
              (List.length rows);
          List.iteri
            (fun i row ->
              (match Obs_json.member "identical" row with
              | Some (Obs_json.Bool true) -> ()
              | Some (Obs_json.Bool false) ->
                  err "%s: rows[%d]: relayed bytes differ from the baseline"
                    path i
              | _ -> err "%s: rows[%d]: missing \"identical\"" path i);
              match
                (num row "baseline_ns", num row "fused_ns",
                 num row "borrowed_bytes", num row "copied_bytes")
              with
              | Some b, Some f, Some bor, Some cop ->
                  if b <= 0. || f <= 0. then
                    err "%s: rows[%d]: non-positive timing (%.0f, %.0f)" path
                      i b f;
                  if bor < 0. || cop < 0. then
                    err "%s: rows[%d]: negative byte accounting" path i
              | _ ->
                  err "%s: rows[%d]: missing timing/accounting keys" path i)
            rows));
  (match Obs_json.member "gate" j with
  | None -> err "%s: gateway artifact is missing its \"gate\"" path
  | Some gate -> (
      (match num gate "min_speedup" with
      | Some ms ->
          if ms < 1.5 then
            err "%s: gate min_speedup %.2f below the pinned 1.5" path ms
      | None -> err "%s: gate is missing min_speedup" path);
      match (Obs_json.member "applied" gate, Obs_json.member "passed" gate) with
      | Some (Obs_json.Bool false), _ -> ()  (* --no-forward run *)
      | Some (Obs_json.Bool true), Some (Obs_json.Bool true) -> (
          match Obs_json.member "rows" gate with
          | Some rows -> (
              match Obs_json.to_list rows with
              | Some (_ :: _) -> ()
              | _ -> err "%s: applied gate carries no measurement rows" path)
          | None -> err "%s: applied gate carries no measurement rows" path)
      | Some (Obs_json.Bool true), Some (Obs_json.Bool false) ->
          err "%s: forwarding gate failed" path
      | _ -> err "%s: gate is missing \"applied\"/\"passed\"" path));
  match Obs_json.member "gateway_roundtrip" j with
  | None -> err "%s: gateway artifact is missing its round-trip record" path
  | Some rt -> (
      match (num rt "requests", num rt "ok", num rt "relay_errors") with
      | Some q, Some ok, Some e ->
          if ok <> q then
            err "%s: round trip answered %.0f of %.0f requests" path ok q;
          if e <> 0. then err "%s: round trip saw %.0f relay errors" path e
      | _ -> err "%s: round-trip record is missing its keys" path)

(* The selfdesc artifact carries the variable-header parity matrix: a
   cell that is not byte-identical, decodes unequal, or leaves
   reservation slack on the wire must fail CI even if the benchmark's
   own self-checks were green. *)
let check_selfdesc path j =
  let num obj key =
    match Obs_json.member key obj with
    | Some v -> Obs_json.to_float v
    | None -> None
  in
  match Obs_json.member "rows" j with
  | None -> err "%s: selfdesc artifact is missing its \"rows\"" path
  | Some rows -> (
      match Obs_json.to_list rows with
      | None -> err "%s: \"rows\" is not an array" path
      | Some rows ->
          (* 2 encodings x 3 workloads x 2 sizes in every mode *)
          if List.length rows < 12 then
            err "%s: selfdesc matrix has %d rows, want >= 12" path
              (List.length rows);
          List.iteri
            (fun i row ->
              List.iter
                (fun key ->
                  match Obs_json.member key row with
                  | Some (Obs_json.Bool true) -> ()
                  | Some (Obs_json.Bool false) ->
                      err "%s: rows[%d]: %s is false" path i key
                  | _ -> err "%s: rows[%d]: missing %S" path i key)
                [
                  "identical"; "decoded_equal"; "consumed"; "plan_verified";
                  "dplan_verified";
                ];
              match (num row "encode_ns", num row "decode_ns") with
              | Some e, Some d ->
                  if e <= 0. || d <= 0. then
                    err "%s: rows[%d]: non-positive timing (%.0f, %.0f)" path
                      i e d
              | _ -> err "%s: rows[%d]: missing timing keys" path i)
            rows)

(* The tail artifact carries the tracing tentpole's reconciliation and
   overhead gates, so its shape is pinned: every sweep point must
   attribute all of its round-trip time to phases (shares summing to 1)
   with exemplar coverage, the phase sums must have reconciled exactly
   against the client's own clock on both the direct and the two-hop
   gateway topology, and the disabled recorder must have cost nothing. *)
let check_tail path j =
  let num obj key =
    match Obs_json.member key obj with
    | Some v -> Obs_json.to_float v
    | None -> None
  in
  (match Obs_json.member "sweep" j with
  | None -> err "%s: tail artifact is missing its \"sweep\"" path
  | Some sweep -> (
      match Obs_json.to_list sweep with
      | None -> err "%s: \"sweep\" is not an array" path
      | Some points ->
          if List.length points < 4 then
            err "%s: sweep has %d points, want >= 4" path (List.length points);
          let last_conns = ref 0 in
          List.iteri
            (fun i p ->
              (match (num p "conns", num p "rps") with
              | Some conns, Some rps ->
                  if int_of_float conns <= !last_conns then
                    err "%s: sweep[%d]: conns %.0f not increasing" path i conns;
                  last_conns := int_of_float conns;
                  if rps <= 0. then
                    err "%s: sweep[%d]: non-positive rps %.1f" path i rps
              | _ -> err "%s: sweep[%d]: missing conns/rps" path i);
              (match num p "share_sum" with
              | Some s ->
                  if Float.abs (s -. 1.) > 0.01 then
                    err
                      "%s: sweep[%d]: phase shares sum to %.4f, want 1 \
                       (unattributed time)"
                      path i s
              | None -> err "%s: sweep[%d]: missing share_sum" path i);
              (match num p "exemplar_coverage" with
              | Some c ->
                  if c < 0.9 then
                    err "%s: sweep[%d]: exemplar coverage %.2f below 0.9"
                      path i c
              | None -> err "%s: sweep[%d]: missing exemplar_coverage" path i);
              match Obs_json.member "phases" p with
              | None -> err "%s: sweep[%d]: missing \"phases\"" path i
              | Some phases -> (
                  match Obs_json.to_list phases with
                  | Some rows when List.length rows = 8 ->
                      List.iteri
                        (fun k row ->
                          match num row "share" with
                          | Some s ->
                              if s < 0. || s > 1. then
                                err
                                  "%s: sweep[%d].phases[%d]: share %.4f \
                                   outside [0,1]"
                                  path i k s
                          | None ->
                              err "%s: sweep[%d].phases[%d]: missing share"
                                path i k)
                        rows
                  | Some rows ->
                      err "%s: sweep[%d]: %d phase rows, want 8" path i
                        (List.length rows)
                  | None -> err "%s: sweep[%d]: \"phases\" not an array" path i))
            points));
  let reconcile key =
    match Obs_json.member key j with
    | None -> err "%s: tail artifact is missing %S" path key
    | Some r -> (
        match (num r "checked", num r "failures") with
        | Some c, Some f ->
            if c <= 0. then
              err "%s: %s checked nothing (%.0f records)" path key c;
            if f <> 0. then
              err "%s: %s: %.0f phase sums did not reconcile exactly" path
                key f
        | _ -> err "%s: %s is missing checked/failures" path key)
  in
  reconcile "reconcile";
  reconcile "gateway_reconcile";
  match Obs_json.member "overhead_gate" j with
  | None -> err "%s: tail artifact is missing its \"overhead_gate\"" path
  | Some gate -> (
      (match num gate "max_overhead" with
      | Some m ->
          if m > 0.03 then
            err "%s: overhead gate loosened to %.2f (pinned 0.03)" path m
      | None -> err "%s: overhead gate is missing max_overhead" path);
      (match (num gate "overhead_off", num gate "max_overhead") with
      | Some o, Some m ->
          if o > m then
            err "%s: disabled-recorder overhead %.4f exceeds %.2f" path o m
      | _ -> ());
      match Obs_json.member "passed" gate with
      | Some (Obs_json.Bool true) -> ()
      | Some (Obs_json.Bool false) -> err "%s: overhead gate failed" path
      | _ -> err "%s: overhead gate is missing \"passed\"" path)

let check_file path =
  match Obs_json.parse (read_all path) with
  | Error msg -> err "%s: invalid JSON: %s" path msg
  | Ok (Obs_json.Obj members as j) ->
      (match Obs_json.member "artifact" j with
      | Some (Obs_json.Str name) ->
          Printf.printf "%s: artifact %S" path name;
          if name = "serve" then check_serve_sweep path j;
          if name = "stage" then check_stage path j;
          if name = "gateway" then check_gateway path j;
          if name = "selfdesc" then check_selfdesc path j;
          if name = "tail" then check_tail path j
      | _ -> err "%s: missing \"artifact\" name" path);
      (match Obs_json.member "self_check_failed" j with
      | Some (Obs_json.Bool false) -> ()
      | Some (Obs_json.Bool true) -> err "%s: self_check_failed is true" path
      | _ -> err "%s: missing \"self_check_failed\"" path);
      List.iter
        (fun (key, v) ->
          let n = String.length key in
          if
            n > 7
            && String.sub key (n - 7) 7 = "_failed"
            && key <> "self_check_failed"
          then
            match v with
            | Obs_json.Bool false -> ()
            | Obs_json.Bool true -> err "%s: %s is true" path key
            | _ -> err "%s: %s is not a boolean" path key)
        members;
      if not !failed then Printf.printf ", self-checks clean\n"
      else print_newline ()
  | Ok _ -> err "%s: top level is not a JSON object" path

let () =
  let files =
    Sys.readdir "." |> Array.to_list
    |> List.filter (fun f ->
           String.length f > 11
           && String.sub f 0 6 = "BENCH_"
           && Filename.check_suffix f ".json")
    |> List.sort compare
  in
  if files = [] then begin
    print_endline "check_bench: no BENCH_*.json artifact files found";
    exit 1
  end;
  List.iter check_file files;
  if !failed then exit 1;
  Printf.printf "check_bench: %d artifact file(s) OK\n" (List.length files)
