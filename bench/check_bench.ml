(* CI validator for the benchmark artifact files.

   Parses every BENCH_*.json in the working directory with the repo's
   own JSON reader (Obs_json — the container ships no JSON library) and
   requires of each:
   - it parses as one JSON object;
   - it names its "artifact";
   - "self_check_failed" is present and false;
   - every other "*_failed" member (e.g. "tracematrix_failed", merged
     in by artifacts that share a file) is false.
   Exits non-zero on any violation, or when no artifact files exist at
   all — `make ci` runs the smoke benchmarks first, so an empty
   directory means they silently wrote nothing. *)

let failed = ref false

let err fmt =
  Printf.ksprintf
    (fun s ->
      failed := true;
      Printf.printf "check_bench: %s\n" s)
    fmt

let read_all path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let check_file path =
  match Obs_json.parse (read_all path) with
  | Error msg -> err "%s: invalid JSON: %s" path msg
  | Ok (Obs_json.Obj members as j) ->
      (match Obs_json.member "artifact" j with
      | Some (Obs_json.Str name) -> Printf.printf "%s: artifact %S" path name
      | _ -> err "%s: missing \"artifact\" name" path);
      (match Obs_json.member "self_check_failed" j with
      | Some (Obs_json.Bool false) -> ()
      | Some (Obs_json.Bool true) -> err "%s: self_check_failed is true" path
      | _ -> err "%s: missing \"self_check_failed\"" path);
      List.iter
        (fun (key, v) ->
          let n = String.length key in
          if
            n > 7
            && String.sub key (n - 7) 7 = "_failed"
            && key <> "self_check_failed"
          then
            match v with
            | Obs_json.Bool false -> ()
            | Obs_json.Bool true -> err "%s: %s is true" path key
            | _ -> err "%s: %s is not a boolean" path key)
        members;
      if not !failed then Printf.printf ", self-checks clean\n"
      else print_newline ()
  | Ok _ -> err "%s: top level is not a JSON object" path

let () =
  let files =
    Sys.readdir "." |> Array.to_list
    |> List.filter (fun f ->
           String.length f > 11
           && String.sub f 0 6 = "BENCH_"
           && Filename.check_suffix f ".json")
    |> List.sort compare
  in
  if files = [] then begin
    print_endline "check_bench: no BENCH_*.json artifact files found";
    exit 1
  end;
  List.iter check_file files;
  if !failed then exit 1;
  Printf.printf "check_bench: %d artifact file(s) OK\n" (List.length files)
