(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (section 4) plus ablations for the section 3
   optimizations.

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe fig3       -- one artifact
     dune exec bench/main.exe -- --full  -- the paper's full size sweeps

   Methodology notes live in EXPERIMENTS.md.  Shapes, not absolute
   numbers, are the reproduction target: the stub engines stand in for
   generated C on the paper's testbed (see DESIGN.md). *)

open Bechamel

let full = ref false
let smoke = ref false

(* ------------------------------------------------------------------ *)
(* Measurement                                                          *)
(* ------------------------------------------------------------------ *)

let ols =
  Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]

let clock = Toolkit.Instance.monotonic_clock

(* nanoseconds per run of [f], via a Bechamel Test.make *)
let measure_ns name f =
  (* settle the heap so major collections triggered by one cell do not
     bleed into the next *)
  Gc.major ();
  let test = Test.make ~name (Staged.stage f) in
  let quota = if !full then 0.5 else 0.2 in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second quota) ~kde:None
      ~stabilize:false ()
  in
  let raw = Benchmark.all cfg [ clock ] test in
  let results = Analyze.all ols clock raw in
  match Hashtbl.fold (fun _ v acc -> v :: acc) results [] with
  | [ est ] -> (
      match Analyze.OLS.estimates est with
      | Some [ ns ] when ns > 0. -> ns
      | _ -> nan)
  | _ -> nan

(* the minimum of two samples: robust against one-off scheduler noise *)
let measure_ns name f = Float.min (measure_ns name f) (measure_ns name f)

let mbps bytes ns = float_of_int bytes /. ns *. 1e9 /. 1e6
(* MB/s with 1e6 bytes per MB, matching the paper's axes *)

(* ------------------------------------------------------------------ *)
(* The competing stub generators (paper Table 3)                        *)
(* ------------------------------------------------------------------ *)

type engine = {
  e_name : string;
  e_origin : string;
  e_idl : string;
  e_encoding : Encoding.t;
  e_style : [ `Corba | `Rpcgen ];
  e_make_encoder :
    enc:Encoding.t ->
    mint:Mint.t ->
    named:(string * (Mint.idx * Pres.t)) list ->
    Plan_compile.root list ->
    Stub_opt.encoder;
  e_make_decoder :
    enc:Encoding.t ->
    mint:Mint.t ->
    named:(string * (Mint.idx * Pres.t)) list ->
    Stub_opt.droot list ->
    Stub_opt.decoder;
}

let naive_encoder ~enc ~mint ~named roots =
  Stub_naive.compile_encoder ~config:Stub_naive.default_config ~enc ~mint
    ~named roots

let naive_decoder ~enc ~mint ~named droots =
  Stub_naive.compile_decoder ~config:Stub_naive.default_config ~enc ~mint
    ~named droots

let flick_encoder ~enc ~mint ~named roots =
  Stub_opt.compile_encoder ~enc ~mint ~named roots

let flick_decoder ~enc ~mint ~named droots =
  Stub_opt.compile_decoder ~enc ~mint ~named droots

(* One line and one JSON object per cache, shared by the planopt and
   decplan warm-cache reports so encode and decode caches read the same
   way: hit rate AND eviction pressure for both sides. *)
let cache_report_line name (st : Plan_cache.stats) =
  Printf.printf
    "  %-18s %5d hits %5d misses %5d entries %4d evicted %3d resets  %5.1f%%\n"
    name st.Plan_cache.hits st.Plan_cache.misses st.Plan_cache.entries
    st.Plan_cache.evictions st.Plan_cache.resets
    (100. *. Plan_cache.hit_rate st)

let cache_json name (st : Plan_cache.stats) =
  Printf.sprintf
    "{ \"name\": %S, \"hits\": %d, \"misses\": %d, \"entries\": %d, \
     \"evictions\": %d, \"resets\": %d, \"hit_rate\": %.3f }"
    name st.Plan_cache.hits st.Plan_cache.misses st.Plan_cache.entries
    st.Plan_cache.evictions st.Plan_cache.resets
    (Plan_cache.hit_rate st)

let engines =
  [
    {
      e_name = "rpcgen";
      e_origin = "Sun";
      e_idl = "ONC";
      e_encoding = Encoding.xdr;
      e_style = `Rpcgen;
      e_make_encoder = naive_encoder;
      e_make_decoder = naive_decoder;
    };
    {
      e_name = "PowerRPC";
      e_origin = "Netbula";
      e_idl = "CORBA-like";
      e_encoding = Encoding.xdr;
      e_style = `Rpcgen;
      e_make_encoder = naive_encoder;
      e_make_decoder = naive_decoder;
    };
    {
      e_name = "Flick/ONC";
      e_origin = "Utah";
      e_idl = "ONC";
      e_encoding = Encoding.xdr;
      e_style = `Rpcgen;
      e_make_encoder = flick_encoder;
      e_make_decoder = flick_decoder;
    };
    {
      e_name = "ORBeline";
      e_origin = "Visigenic";
      e_idl = "CORBA";
      e_encoding = Encoding.cdr;
      e_style = `Corba;
      e_make_encoder = Stub_interp.compile_encoder;
      e_make_decoder = Stub_interp.compile_decoder;
    };
    {
      e_name = "ILU";
      e_origin = "Xerox PARC";
      e_idl = "CORBA";
      e_encoding = Encoding.cdr;
      e_style = `Corba;
      e_make_encoder = Stub_interp.compile_encoder;
      e_make_decoder = Stub_interp.compile_decoder;
    };
    {
      e_name = "Flick/CORBA";
      e_origin = "Utah";
      e_idl = "CORBA";
      e_encoding = Encoding.cdr;
      e_style = `Corba;
      e_make_encoder = flick_encoder;
      e_make_decoder = flick_decoder;
    };
  ]

let presc_of = function
  | `Corba -> Paper_fixtures.bench_presc `Corba
  | `Rpcgen -> Paper_fixtures.bench_presc `Rpcgen

(* marshal throughput of one engine on one payload at one size *)
let marshal_cell e payload bytes =
  let pc = presc_of e.e_style in
  let op = Paper_fixtures.op_of_payload payload in
  let spec = Paper_fixtures.request_spec pc ~op in
  let encode =
    e.e_make_encoder ~enc:e.e_encoding ~mint:spec.Paper_fixtures.ms_mint
      ~named:spec.Paper_fixtures.ms_named spec.Paper_fixtures.ms_roots
  in
  let value = Paper_fixtures.payload payload ~bytes in
  let params = [| value |] in
  let buf = Mbuf.create (bytes + 4096) in
  encode buf params;
  let wire = Mbuf.pos buf in
  let ns =
    measure_ns
      (Printf.sprintf "%s/%s/%d" e.e_name
         (Paper_fixtures.op_of_payload payload)
         bytes)
      (fun () ->
        Mbuf.reset buf;
        encode buf params)
  in
  (wire, ns)

let unmarshal_ns e payload bytes =
  let pc = presc_of e.e_style in
  let op = Paper_fixtures.op_of_payload payload in
  let spec = Paper_fixtures.request_spec pc ~op in
  let encode =
    Stub_opt.compile_encoder ~enc:e.e_encoding ~mint:spec.Paper_fixtures.ms_mint
      ~named:spec.Paper_fixtures.ms_named spec.Paper_fixtures.ms_roots
  in
  let decode =
    e.e_make_decoder ~enc:e.e_encoding ~mint:spec.Paper_fixtures.ms_mint
      ~named:spec.Paper_fixtures.ms_named spec.Paper_fixtures.ms_droots
  in
  let value = Paper_fixtures.payload payload ~bytes in
  let buf = Mbuf.create (bytes + 4096) in
  encode buf [| value |];
  (* read straight over the writer's segments: no whole-message copy *)
  measure_ns "unmarshal" (fun () -> ignore (decode (Mbuf.reader buf)))

(* ------------------------------------------------------------------ *)
(* Tables                                                               *)
(* ------------------------------------------------------------------ *)

let table1 () =
  print_endline "============================================================";
  print_endline " Table 1 - code reuse within the compiler";
  print_endline "============================================================";
  print_string (Reuse.render (Reuse.table1 ()));
  print_newline ()

let table2 () =
  print_endline "============================================================";
  print_endline " Table 2 - object code sizes (directory interface)";
  print_endline "============================================================";
  print_endline
    "gcc -O2 -c sizes of the stubs our back ends generate for the paper's\n\
     directory interface.  The other compilers' rows are not reproducible\n\
     (no 1997 binaries); the paper's point - that fully inlined optimized\n\
     stubs stay compact and need almost no marshaling library - is checked\n\
     against the runtime's size.";
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "flick-table2-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Runtime.write_to dir;
  Printf.printf "%-28s %10s %10s %10s\n" "configuration" "client .o" "server .o"
    "gen. src";
  let backends =
    [
      ("Flick CORBA/IIOP", `Corba, Be_iiop.generate);
      ("Flick CORBA/Mach3", `Corba, Be_mach.generate);
      ("Flick rpcgen/ONC-XDR", `Rpcgen, Be_xdr.generate);
      ("Flick rpcgen/Fluke", `Rpcgen, Be_fluke.generate);
    ]
  in
  List.iter
    (fun (name, style, gen) ->
      let pc = Paper_fixtures.dir_presc style in
      let files = gen pc in
      List.iter
        (fun (fname, contents) ->
          let oc = open_out (Filename.concat dir fname) in
          output_string oc contents;
          close_out oc)
        files;
      let src_bytes =
        List.fold_left (fun acc (_, c) -> acc + String.length c) 0 files
      in
      let osize fname =
        let rc =
          Sys.command
            (Printf.sprintf "cd %s && gcc -std=c99 -O2 -c %s -o %s.o 2>/dev/null"
               (Filename.quote dir) fname fname)
        in
        if rc <> 0 then -1
        else (Unix.stat (Filename.concat dir (fname ^ ".o"))).Unix.st_size
      in
      let client =
        List.find_map
          (fun (f, _) ->
            if Filename.check_suffix f "_client.c" then Some (osize f) else None)
          files
        |> Option.value ~default:(-1)
      in
      let server =
        List.find_map
          (fun (f, _) ->
            if Filename.check_suffix f "_server.c" then Some (osize f) else None)
          files
        |> Option.value ~default:(-1)
      in
      Printf.printf "%-28s %9dB %9dB %9dB\n" name client server src_bytes)
    backends;
  (* the "library code" column: a translation unit that uses the runtime *)
  let lib_c = Filename.concat dir "lib_probe.c" in
  let oc = open_out lib_c in
  output_string oc
    "#include \"flick_runtime.h\"\nvoid *probe[] = { (void*)flick_put_str, \
     (void*)flick_get_key, (void*)flick_invoke, (void*)flick_salloc };\n";
  close_out oc;
  let rc =
    Sys.command
      (Printf.sprintf
         "cd %s && gcc -std=c99 -O2 -c lib_probe.c -o lib.o 2>/dev/null"
         (Filename.quote dir))
  in
  if rc = 0 then
    Printf.printf "%-28s %9dB  (whole marshal/transport runtime)\n"
      "runtime library"
      (Unix.stat (Filename.concat dir "lib.o")).Unix.st_size;
  print_newline ()

let table3 () =
  print_endline "============================================================";
  print_endline " Table 3 - tested IDL compilers and their attributes";
  print_endline "============================================================";
  Printf.printf "%-12s %-12s %-11s %-9s %-30s\n" "Compiler" "Origin" "IDL"
    "Encoding" "Engine standing in";
  List.iter
    (fun e ->
      let standin =
        if e.e_make_encoder == flick_encoder then
          "optimized plans (this compiler)"
        else if e.e_make_encoder == naive_encoder then "call-per-datum stubs"
        else "runtime type interpretation"
      in
      Printf.printf "%-12s %-12s %-11s %-9s %-30s\n" e.e_name e.e_origin
        e.e_idl e.e_encoding.Encoding.name standin)
    engines;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Figure 3 - marshal throughput                                        *)
(* ------------------------------------------------------------------ *)

let fig3_sizes payload =
  match payload with
  | `Ints | `Rects ->
      if !full then [ 64; 1024; 16384; 262144; 4194304 ]
      else [ 64; 1024; 16384; 262144; 1048576 ]
  | `Dirents -> [ 256; 4096; 65536; 524288 ]

let fig3 () =
  print_endline "============================================================";
  print_endline " Figure 3 - marshal throughput (MB/s), by compiler";
  print_endline "============================================================";
  List.iter
    (fun payload ->
      let title =
        match payload with
        | `Ints -> "arrays of integers"
        | `Rects -> "arrays of rectangles (4 ints each)"
        | `Dirents -> "arrays of directory entries (~256B each)"
      in
      Printf.printf "\n-- %s --\n" title;
      let sizes = fig3_sizes payload in
      Printf.printf "%-12s" "compiler";
      List.iter (fun s -> Printf.printf "%11s" (Printf.sprintf "%dB" s)) sizes;
      print_newline ();
      let rows =
        List.map
          (fun e ->
            let cells =
              List.map
                (fun bytes ->
                  let wire, ns = marshal_cell e payload bytes in
                  mbps wire ns)
                sizes
            in
            (e, cells))
          engines
      in
      List.iter
        (fun (e, cells) ->
          Printf.printf "%-12s" e.e_name;
          List.iter (fun v -> Printf.printf "%11.1f" v) cells;
          print_newline ())
        rows;
      (* the paper's headline: Flick vs the best traditional stub *)
      let flick =
        List.assoc "Flick/ONC" (List.map (fun (e, c) -> (e.e_name, c)) rows)
      in
      let best_other =
        List.fold_left
          (fun acc (e, cells) ->
            if String.length e.e_name >= 5 && String.sub e.e_name 0 5 = "Flick"
            then acc
            else List.map2 Float.max acc cells)
          (List.map (fun _ -> 0.) sizes)
          rows
      in
      Printf.printf "%-12s" "Flick/best";
      List.iter2 (fun f o -> Printf.printf "%10.1fx" (f /. o)) flick best_other;
      print_newline ())
    [ `Ints; `Rects; `Dirents ];
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Figures 4-6 - end-to-end throughput over simulated networks          *)
(* ------------------------------------------------------------------ *)

(* The calibration factor mapping our engine speeds onto the paper's
   1997 hardware: Flick's large-array marshal rate was memory-bound at
   roughly 30 MB/s on the SPARC testbed. *)
let time_scale =
  lazy
    (let flick = List.find (fun e -> e.e_name = "Flick/ONC") engines in
     let wire, ns = marshal_cell flick `Ints 1048576 in
     let our_bw = float_of_int wire /. (ns /. 1e9) in
     our_bw /. 30e6)

let end_to_end net_name net () =
  Printf.printf "\n-- integer arrays over %s (Mbit/s end-to-end) --\n" net_name;
  let sizes =
    if !full then [ 1024; 16384; 131072; 1048576; 4194304 ]
    else [ 1024; 16384; 131072; 1048576 ]
  in
  let scale = Lazy.force time_scale in
  let onc_engines =
    List.filter
      (fun e ->
        e.e_name = "rpcgen" || e.e_name = "PowerRPC" || e.e_name = "Flick/ONC")
      engines
  in
  Printf.printf "%-12s" "compiler";
  List.iter (fun s -> Printf.printf "%11s" (Printf.sprintf "%dB" s)) sizes;
  print_newline ();
  let results =
    List.map
      (fun e ->
        let cells =
          List.map
            (fun bytes ->
              let wire, mns = marshal_cell e `Ints bytes in
              let uns = unmarshal_ns e `Ints bytes in
              let m_t = mns /. 1e9 *. scale and u_t = uns /. 1e9 *. scale in
              let cost =
                {
                  Rpc_sim.sc_name = e.e_name;
                  sc_marshal =
                    (fun b ->
                      if b >= bytes then m_t
                      else m_t *. float_of_int b /. float_of_int bytes);
                  sc_unmarshal =
                    (fun b ->
                      if b >= bytes then u_t
                      else u_t *. float_of_int b /. float_of_int bytes);
                  sc_per_call = 100e-6;
                }
              in
              Rpc_sim.round_trip_throughput ~net ~cost ~msg_bytes:wire ())
            sizes
        in
        (e.e_name, cells))
      onc_engines
  in
  List.iter
    (fun (name, cells) ->
      Printf.printf "%-12s" name;
      List.iter (fun v -> Printf.printf "%11.2f" v) cells;
      print_newline ())
    results;
  let flick = List.assoc "Flick/ONC" results in
  let rpcgen = List.assoc "rpcgen" results in
  Printf.printf "%-12s" "Flick/rpcgen";
  List.iter2 (fun f r -> Printf.printf "%10.2fx" (f /. r)) flick rpcgen;
  print_newline ()

let fig4 () =
  print_endline "============================================================";
  print_endline " Figure 4 - end-to-end across 10Mbps Ethernet (eff. 7.5)";
  print_endline "============================================================";
  end_to_end "10Mbps Ethernet" (fun ~sim -> Link.ethernet_10 ~sim) ()

let fig5 () =
  print_endline "============================================================";
  print_endline " Figure 5 - end-to-end across 100Mbps Ethernet (eff. 70)";
  print_endline "============================================================";
  end_to_end "100Mbps Ethernet" (fun ~sim -> Link.ethernet_100 ~sim) ()

let fig6 () =
  print_endline "============================================================";
  print_endline " Figure 6 - end-to-end across 640Mbps Myrinet (eff. 84.5)";
  print_endline "============================================================";
  end_to_end "640Mbps Myrinet" (fun ~sim -> Link.myrinet_640 ~sim) ()

(* ------------------------------------------------------------------ *)
(* Figure 7 - MIG vs Flick over Mach IPC                                *)
(* ------------------------------------------------------------------ *)

let fig7 () =
  print_endline "============================================================";
  print_endline " Figure 7 - MIG vs Flick stubs over Mach IPC";
  print_endline "============================================================";
  (* per-byte costs from the mach3 encodings: Flick = optimized plans,
     MIG = the per-datum typed-message shape; scaled to the 1997 host *)
  let scale = Lazy.force time_scale in
  let mach e payload bytes =
    let e = { e with e_encoding = Encoding.mach3 } in
    let wire, mns = marshal_cell e payload bytes in
    let uns = unmarshal_ns e payload bytes in
    scale *. (mns +. uns) /. 1e9 /. float_of_int wire
  in
  let flick = List.find (fun e -> e.e_name = "Flick/ONC") engines in
  let rpc = List.find (fun e -> e.e_name = "rpcgen") engines in
  let flick_per_byte = mach flick `Ints 262144 in
  let mig_per_byte = mach rpc `Ints 262144 in
  let model = Mach_model.calibrate ~flick_per_byte ~mig_per_byte in
  Printf.printf
    "calibrated model: MIG %.2fus + %.2fns/B, Flick %.2fus + %.2fns/B\n"
    (model.Mach_model.mig_fixed *. 1e6)
    (model.Mach_model.mig_per_byte *. 1e9)
    (model.Mach_model.flick_fixed *. 1e6)
    (model.Mach_model.flick_per_byte *. 1e9);
  Printf.printf "%-10s %12s %12s %10s\n" "size" "MIG Mbit/s" "Flick Mbit/s"
    "Flick/MIG";
  List.iter
    (fun bytes ->
      let m = Mach_model.throughput model `Mig ~bytes in
      let f = Mach_model.throughput model `Flick ~bytes in
      Printf.printf "%-10d %12.2f %12.2f %9.2fx\n" bytes m f (f /. m))
    [ 64; 256; 1024; 4096; 8192; 16384; 65536 ];
  Printf.printf "crossover at %.0f bytes (paper: 8K)\n\n"
    (Mach_model.crossover model)

(* ------------------------------------------------------------------ *)
(* Ablations - the section 3 optimization claims                        *)
(* ------------------------------------------------------------------ *)

let ablations () =
  print_endline "============================================================";
  print_endline " Ablations - section 3 optimizations in isolation";
  print_endline "============================================================";
  let pc = presc_of `Rpcgen in
  let enc = Encoding.xdr in
  let spec op = Paper_fixtures.request_spec pc ~op in
  let time_encoder encoder value bytes =
    let buf = Mbuf.create (bytes + 4096) in
    encoder buf [| value |];
    let wire = Mbuf.pos buf in
    let ns =
      measure_ns "abl" (fun () ->
          Mbuf.reset buf;
          encoder buf [| value |])
    in
    (wire, ns)
  in
  let pct base v = 100. *. (base -. v) /. base in

  (* A1/A4: chunking and single buffer checks (sections 3.1, 3.2) *)
  let s = spec "send_dirents" in
  let value = Paper_fixtures.payload `Dirents ~bytes:65536 in
  let chunked_plan =
    Plan_compile.compile ~enc ~mint:s.Paper_fixtures.ms_mint
      ~named:s.Paper_fixtures.ms_named s.Paper_fixtures.ms_roots
  in
  let unchunked_plan =
    Plan_compile.compile ~enc ~mint:s.Paper_fixtures.ms_mint
      ~named:s.Paper_fixtures.ms_named ~chunked:false s.Paper_fixtures.ms_roots
  in
  let _, ns_chunked =
    time_encoder (Stub_opt.encoder_of_plan ~enc chunked_plan) value 65536
  in
  let _, ns_unchunked =
    time_encoder (Stub_opt.encoder_of_plan ~enc unchunked_plan) value 65536
  in
  Printf.printf
    "A1/A4 chunked buffer management (64KB directory entries):\n\
    \  per-datum checks %.2fus -> chunked %.2fus  (%.1f%% faster; paper: \
     ~12%%+14%%)\n"
    (ns_unchunked /. 1e3) (ns_chunked /. 1e3)
    (pct ns_unchunked ns_chunked);

  (* A3: memcpy for character data (section 3.2) *)
  let per_char =
    Stub_naive.compile_encoder
      ~config:{ Stub_naive.per_char_strings = true; per_elem_arrays = true }
      ~enc ~mint:s.Paper_fixtures.ms_mint ~named:s.Paper_fixtures.ms_named
      s.Paper_fixtures.ms_roots
  in
  let blit =
    Stub_naive.compile_encoder
      ~config:{ Stub_naive.per_char_strings = false; per_elem_arrays = true }
      ~enc ~mint:s.Paper_fixtures.ms_mint ~named:s.Paper_fixtures.ms_named
      s.Paper_fixtures.ms_roots
  in
  let _, ns_char = time_encoder per_char value 65536 in
  let _, ns_blit = time_encoder blit value 65536 in
  Printf.printf
    "A3 string memcpy (64KB of directory entries, name-heavy):\n\
    \  char-by-char %.2fus -> memcpy %.2fus  (%.1f%% faster on string \
     processing; paper: 60-70%%)\n"
    (ns_char /. 1e3) (ns_blit /. 1e3) (pct ns_char ns_blit);

  (* A5: inlining vs call/interpretation per type (section 3.3) *)
  let si = spec "send_rects" in
  let rects = Paper_fixtures.payload `Rects ~bytes:65536 in
  let inlined =
    Stub_opt.compile_encoder ~enc ~mint:si.Paper_fixtures.ms_mint
      ~named:si.Paper_fixtures.ms_named si.Paper_fixtures.ms_roots
  in
  let interp =
    Stub_interp.compile_encoder ~enc ~mint:si.Paper_fixtures.ms_mint
      ~named:si.Paper_fixtures.ms_named si.Paper_fixtures.ms_roots
  in
  let _, ns_inl = time_encoder inlined rects 65536 in
  let _, ns_int = time_encoder interp rects 65536 in
  Printf.printf
    "A5 inlined marshal code vs per-type interpretation (64KB rectangles):\n\
    \  interpreted %.2fus -> inlined %.2fus  (%.1f%% faster; paper: up to \
     60%%)\n"
    (ns_int /. 1e3) (ns_inl /. 1e3) (pct ns_int ns_inl);

  (* A2: parameter management on the unmarshal path (section 3.1) *)
  let small = Paper_fixtures.payload `Dirents ~bytes:1024 in
  let enc_small =
    Stub_opt.compile_encoder ~enc ~mint:s.Paper_fixtures.ms_mint
      ~named:s.Paper_fixtures.ms_named s.Paper_fixtures.ms_roots
  in
  let buf = Mbuf.create 8192 in
  enc_small buf [| small |];
  let dec_opt =
    Stub_opt.compile_decoder ~enc ~mint:s.Paper_fixtures.ms_mint
      ~named:s.Paper_fixtures.ms_named s.Paper_fixtures.ms_droots
  in
  let dec_naive =
    naive_decoder ~enc ~mint:s.Paper_fixtures.ms_mint
      ~named:s.Paper_fixtures.ms_named s.Paper_fixtures.ms_droots
  in
  let ns_dopt =
    measure_ns "dec-opt" (fun () -> ignore (dec_opt (Mbuf.reader buf)))
  in
  let ns_dnaive =
    measure_ns "dec-naive" (fun () -> ignore (dec_naive (Mbuf.reader buf)))
  in
  Printf.printf
    "A2 unmarshal parameter management (1KB directory entries):\n\
    \  per-datum decode %.2fus -> compiled decode %.2fus  (%.1f%% faster; \
     paper: ~14%% from stack allocation)\n"
    (ns_dnaive /. 1e3) (ns_dopt /. 1e3) (pct ns_dnaive ns_dopt);

  (* A6: word-chunked demultiplexing (section 3.3) *)
  let mint = Mint.create () in
  let body = Mint.struct_ mint [ ("x", Mint.int32 mint) ] in
  let n_ops = 26 in
  let op_names =
    List.init n_ops (fun i -> Printf.sprintf "operation_%c" (Char.chr (97 + i)))
  in
  let cases =
    List.map
      (fun name -> { Mint.c_const = Mint.Cstring name; c_body = body })
      op_names
  in
  let req =
    Mint.union mint ~discrim:(Mint.string_ mint ~max_len:None) ~cases
      ~default:None
  in
  let arms =
    List.map (fun name -> (name, Pres.Struct [ ("x", Pres.Direct) ])) op_names
  in
  let req_pres =
    Pres.Union
      { discrim_field = "_op"; union_field = "_u"; arms; default_arm = None }
  in
  let droots = [ Stub_opt.Dvalue (req, req_pres) ] in
  let dec_switch =
    Stub_opt.compile_decoder ~enc:Encoding.cdr ~mint ~named:[] droots
  in
  let dec_linear = naive_decoder ~enc:Encoding.cdr ~mint ~named:[] droots in
  (* requests hitting the last operation: worst case for linear compare *)
  let encode =
    Stub_opt.compile_encoder ~enc:Encoding.cdr ~mint ~named:[]
      [
        Plan_compile.Rvalue
          (Mplan.Rparam { index = 0; name = "r"; deref = false }, req, req_pres);
      ]
  in
  let value =
    Value.Vunion
      {
        case = n_ops - 1;
        discrim = Mint.Cstring (List.nth op_names (n_ops - 1));
        payload = Value.Vstruct [| Value.Vint 7 |];
      }
  in
  let b = Mbuf.create 64 in
  encode b [| value |];
  let ns_sw =
    measure_ns "demux-switch" (fun () -> ignore (dec_switch (Mbuf.reader b)))
  in
  let ns_lin =
    measure_ns "demux-linear" (fun () -> ignore (dec_linear (Mbuf.reader b)))
  in
  Printf.printf
    "A6 demultiplexing a 26-operation interface (string keys, worst case):\n\
    \  linear compares %.0fns -> indexed dispatch %.0fns  (%.1f%% faster)\n\n"
    ns_lin ns_sw (pct ns_lin ns_sw)

(* ------------------------------------------------------------------ *)
(* planopt - the peephole pass and the compiled-plan cache              *)
(* ------------------------------------------------------------------ *)

(* Reports, and records in BENCH_1.json:
   - plan node counts before/after the optimizer pipeline, per workload,
     encoding, and compilation mode (the per-datum mode is where the
     passes recover the chunking the compiler was told to skip), plus a
     per-pass trace of the showcase workload;
   - encode throughput for the directory workload under three pipeline
     configurations (none / full pipeline / production chunked+cached);
   - cache hit rates and eviction pressure on a repeated
     stub-compilation workload.
   Every plan this artifact executes is checked by the structural plan
   verifier; a dirty plan fails the run.
   [--smoke] shrinks the payload so CI can run it in a few seconds. *)

let planopt_failed = ref false

let planopt () =
  print_endline "============================================================";
  print_endline " planopt - optimizer pass pipeline and compiled-plan cache";
  print_endline "============================================================";
  let check what ok =
    if not ok then begin
      planopt_failed := true;
      Printf.printf "  SELF-CHECK FAILED: %s\n" what
    end
  in
  let verified (p : Plan_compile.plan) =
    match Plan_verify.check_plan p with
    | Ok () -> true
    | Error e ->
        Printf.printf "  verifier: %s\n" (Plan_verify.error_to_string e);
        false
  in
  let plan_nodes (p : Plan_compile.plan) =
    Mplan.count_ops p.Plan_compile.p_ops
    + List.fold_left
        (fun acc (_, ops) -> acc + Mplan.count_ops ops)
        0 p.Plan_compile.p_subs
  in
  let json = Buffer.create 1024 in
  Buffer.add_string json
    (Printf.sprintf "{\n  \"artifact\": \"planopt\",\n  \"smoke\": %b"
       !smoke);

  (* -- plan node counts -------------------------------------------- *)
  Printf.printf "\n%-6s %-13s %-10s %8s %8s %9s\n" "enc" "operation" "mode"
    "before" "after" "rewrites";
  Buffer.add_string json ",\n  \"node_counts\": [";
  let first = ref true in
  let dirents_reduced = ref false in
  (* per-pass trace of the showcase workload (xdr directory entries,
     per-datum mode: the passes re-chunk what the compiler skipped) *)
  let showcase_trace : Pass.trace list ref = ref [] in
  List.iter
    (fun (ename, enc, style) ->
      let pc = Paper_fixtures.bench_presc style in
      List.iter
        (fun op ->
          let spec = Paper_fixtures.request_spec pc ~op in
          List.iter
            (fun (mode, chunked) ->
              let raw =
                Plan_compile.compile ~enc ~mint:spec.Paper_fixtures.ms_mint
                  ~named:spec.Paper_fixtures.ms_named ~chunked
                  spec.Paper_fixtures.ms_roots
              in
              let st = Peephole.fresh_stats () in
              let showcase =
                ename = "xdr" && op = "send_dirents" && mode = "per-datum"
              in
              let opt =
                Pass.run_encode ~config:Opt_config.all ~stats:st
                  ~on_trace:(fun tr ->
                    if showcase then showcase_trace := !showcase_trace @ [ tr ])
                  raw
              in
              check
                (Printf.sprintf "%s/%s/%s: verifier clean after pipeline"
                   ename op mode)
                (verified opt);
              let before = plan_nodes raw and after = plan_nodes opt in
              if op = "send_dirents" && after < before then
                dirents_reduced := true;
              Printf.printf "%-6s %-13s %-10s %8d %8d %9d\n" ename op mode
                before after (Peephole.rewrites st);
              Buffer.add_string json
                (Printf.sprintf
                   "%s\n    { \"encoding\": %S, \"op\": %S, \"mode\": %S, \
                    \"nodes_before\": %d, \"nodes_after\": %d, \
                    \"chunks_merged\": %d, \"loops_fused\": %d, \
                    \"ensures_hoisted\": %d, \"aligns_removed\": %d, \
                    \"dead_removed\": %d }"
                   (if !first then "" else ",")
                   ename op mode before after st.Peephole.chunks_merged
                   st.Peephole.loops_fused st.Peephole.ensures_hoisted
                   st.Peephole.aligns_removed st.Peephole.dead_removed);
              first := false)
            [ ("chunked", true); ("per-datum", false) ])
        [ "send_ints"; "send_rects"; "send_dirents" ])
    [ ("xdr", Encoding.xdr, `Rpcgen); ("cdr", Encoding.cdr, `Corba) ];
  Buffer.add_string json "\n  ]";
  if not !dirents_reduced then
    print_endline "WARNING: no node reduction on the directory workload";

  Printf.printf
    "\npass trace, directory entries (XDR, per-datum compilation):\n";
  List.iter
    (fun (tr : Pass.trace) ->
      Printf.printf "  %-18s nodes %4d -> %4d   checks %4d -> %4d   %7.1fus\n"
        tr.Pass.tr_pass tr.Pass.tr_nodes_before tr.Pass.tr_nodes_after
        tr.Pass.tr_checks_before tr.Pass.tr_checks_after
        (tr.Pass.tr_wall_ns /. 1e3))
    !showcase_trace;
  check "showcase trace covers every encode pass"
    (List.map (fun (tr : Pass.trace) -> tr.Pass.tr_pass) !showcase_trace
    = Pass.encode_pass_names);
  Buffer.add_string json
    (Printf.sprintf ",\n  \"passes\": [%s]"
       (String.concat ", "
          (List.map
             (fun (tr : Pass.trace) ->
               Printf.sprintf
                 "{ \"pass\": %S, \"nodes_before\": %d, \"nodes_after\": %d, \
                  \"checks_before\": %d, \"checks_after\": %d }"
                 tr.Pass.tr_pass tr.Pass.tr_nodes_before tr.Pass.tr_nodes_after
                 tr.Pass.tr_checks_before tr.Pass.tr_checks_after)
             !showcase_trace)));

  (* -- encode throughput on the directory workload ------------------ *)
  (* Three pipeline configurations through the one production entry
     point (Plan_cache.plan): the config is part of the cache key, so
     these coexist as separate cached plans rather than hand-tweaked
     variants. *)
  let bytes = if !smoke then 4096 else 65536 in
  let enc = Encoding.xdr in
  let pc = Paper_fixtures.bench_presc `Rpcgen in
  let spec = Paper_fixtures.request_spec pc ~op:"send_dirents" in
  let value = Paper_fixtures.payload `Dirents ~bytes in
  let compile ~chunked config =
    Plan_cache.plan ~enc ~mint:spec.Paper_fixtures.ms_mint
      ~named:spec.Paper_fixtures.ms_named ~chunked ~config
      spec.Paper_fixtures.ms_roots
  in
  let rate name plan =
    check
      (Printf.sprintf "throughput plan verifier clean (%s)" name)
      (verified plan);
    let encode = Stub_opt.encoder_of_plan ~enc plan in
    let buf = Mbuf.create (bytes + 4096) in
    encode buf [| value |];
    let wire = Mbuf.pos buf in
    let ns =
      measure_ns name (fun () ->
          Mbuf.reset buf;
          encode buf [| value |])
    in
    let v = mbps wire ns in
    if Float.is_nan v then 0. else v
  in
  let mb_raw = rate "per-datum" (compile ~chunked:false Opt_config.none) in
  let mb_peep =
    rate "per-datum+pipeline" (compile ~chunked:false Opt_config.all)
  in
  let mb_chunked = rate "chunked" (compile ~chunked:true Opt_config.all) in
  Printf.printf
    "\nencode throughput, directory entries (%dB, XDR):\n\
    \  per-datum, passes off   %8.1f MB/s\n\
    \  per-datum + pipeline    %8.1f MB/s\n\
    \  chunked (production)    %8.1f MB/s\n"
    bytes mb_raw mb_peep mb_chunked;
  Buffer.add_string json
    (Printf.sprintf
       ",\n  \"throughput_mbps\": { \"workload\": \"dirents-xdr\", \
        \"bytes\": %d, \"per_datum_raw\": %.1f, \"per_datum_peephole\": \
        %.1f, \"chunked_cached\": %.1f }"
       bytes mb_raw mb_peep mb_chunked);

  (* -- cache hit rate on a repeated compilation workload ------------ *)
  Plan_cache.reset_all ();
  let rounds = 20 in
  for _round = 1 to rounds do
    List.iter
      (fun op ->
        List.iter
          (fun (_, enc, style) ->
            let pc = Paper_fixtures.bench_presc style in
            let spec = Paper_fixtures.request_spec pc ~op in
            ignore
              (Stub_opt.compile_encoder ~enc
                 ~mint:spec.Paper_fixtures.ms_mint
                 ~named:spec.Paper_fixtures.ms_named
                 spec.Paper_fixtures.ms_roots
                : Stub_opt.encoder);
            ignore
              (Stub_opt.compile_decoder ~enc
                 ~mint:spec.Paper_fixtures.ms_mint
                 ~named:spec.Paper_fixtures.ms_named
                 spec.Paper_fixtures.ms_droots
                : Stub_opt.decoder))
          [ ("xdr", Encoding.xdr, `Rpcgen); ("cdr", Encoding.cdr, `Corba) ])
      [ "send_ints"; "send_rects"; "send_dirents" ]
  done;
  let per_cache = Plan_cache.all_stats () in
  let hits, misses =
    List.fold_left
      (fun (h, m) (_, st) -> (h + st.Plan_cache.hits, m + st.Plan_cache.misses))
      (0, 0) per_cache
  in
  let hit_rate = float_of_int hits /. float_of_int (max 1 (hits + misses)) in
  Printf.printf
    "\ncompiled-plan caches over %d rounds x 12 stub compilations:\n" rounds;
  List.iter (fun (name, st) -> cache_report_line name st) per_cache;
  Printf.printf "  %-18s %.1f%% hit rate\n" "overall" (100. *. hit_rate);
  Buffer.add_string json
    (Printf.sprintf
       ",\n  \"cache\": { \"rounds\": %d, \"hits\": %d, \"misses\": %d, \
        \"hit_rate\": %.3f, \"per_cache\": [%s] }"
       rounds hits misses hit_rate
       (String.concat ", "
          (List.map (fun (name, st) -> cache_json name st) per_cache)));
  Buffer.add_string json
    (Printf.sprintf ",\n  \"self_check_failed\": %b\n}\n" !planopt_failed);
  let oc = open_out "BENCH_1.json" in
  Buffer.output_buffer oc json;
  close_out oc;
  if !planopt_failed then
    print_endline "\nplanopt: SELF-CHECK FAILURES above; exiting non-zero"
  else
    print_endline "\nall pipeline, verifier, and cache self-checks passed";
  print_endline "wrote BENCH_1.json\n"

(* ------------------------------------------------------------------ *)
(* sgwire - zero-copy scatter-gather marshal buffers                    *)
(* ------------------------------------------------------------------ *)

(* Reports, and records in BENCH_2.json:
   - copy accounting per workload and size: payload bytes memcpy'd vs
     spliced by reference, seal and segment counts, for the
     scatter-gather path against the PR 1 contiguous baseline;
   - encode throughput both ways for 4KB..4MB string and byte-sequence
     payloads, plus the small messages that must not regress;
   - engine self-checks: the flattened SG message must be
     byte-identical to the contiguous baseline and to the naive and
     interpretive engines; decoding straight over the segment list must
     round-trip; handing the message to the simulated link must never
     flatten it.  Any failure makes the whole run exit non-zero.
   [--smoke] shrinks the size sweep so CI can run it in a few seconds. *)

let sgwire_failed = ref false

let sgwire () =
  print_endline "============================================================";
  print_endline " sgwire - zero-copy scatter-gather marshal buffers";
  print_endline "============================================================";
  let enc = Encoding.xdr in
  let check what ok =
    if not ok then begin
      sgwire_failed := true;
      Printf.printf "  SELF-CHECK FAILED: %s\n" what
    end
  in
  let with_sg on f =
    let old = Mbuf.sg_enabled () in
    Mbuf.set_sg_enabled on;
    Fun.protect ~finally:(fun () -> Mbuf.set_sg_enabled old) f
  in
  (* The large payloads: a string and a counted byte sequence — the two
     blit-shaped data the engines can borrow by reference. *)
  let mint = Mint.create () in
  let str_t = Mint.string_ mint ~max_len:None in
  let seq_t =
    Mint.array mint ~elem:(Mint.char8 mint) ~min_len:0 ~max_len:None
  in
  let seq_pres =
    Pres.Counted_seq { len_field = "len"; buf_field = "buf"; elem = Pres.Direct }
  in
  let root t pres =
    [
      Plan_compile.Rvalue
        (Mplan.Rparam { index = 0; name = "p"; deref = false }, t, pres);
    ]
  in
  let sizes =
    if !smoke then [ 4096; 65536 ] else [ 4096; 65536; 1048576; 4194304 ]
  in
  let big_cases =
    List.concat_map
      (fun bytes ->
        [
          ( "string", mint, [], root str_t Pres.Terminated_string,
            [ Stub_opt.Dvalue (str_t, Pres.Terminated_string) ],
            Value.Vstring (String.init bytes (fun i -> Char.chr (97 + (i mod 23)))),
            bytes );
          ( "byteseq", mint, [], root seq_t seq_pres,
            [ Stub_opt.Dvalue (seq_t, seq_pres) ],
            Value.Vbytes (Bytes.init bytes (fun i -> Char.chr (i land 0xff))),
            bytes );
        ])
      sizes
  in
  (* the small-message paths that must not regress: real request specs
     whose payloads sit under the borrow threshold *)
  let small_cases =
    List.map
      (fun (payload, bytes) ->
        let pc = Paper_fixtures.bench_presc `Rpcgen in
        let op = Paper_fixtures.op_of_payload payload in
        let s = Paper_fixtures.request_spec pc ~op in
        ( op, s.Paper_fixtures.ms_mint, s.Paper_fixtures.ms_named,
          s.Paper_fixtures.ms_roots, s.Paper_fixtures.ms_droots,
          Paper_fixtures.payload payload ~bytes, bytes ))
      [ (`Ints, 64); (`Dirents, 256) ]
  in
  let json = Buffer.create 2048 in
  Buffer.add_string json
    (Printf.sprintf
       "{\n  \"artifact\": \"sgwire\",\n  \"smoke\": %b,\n  \
        \"borrow_threshold\": %d,\n  \"encoding\": \"xdr\",\n  \"cases\": ["
       !smoke (Mbuf.borrow_threshold ()));
  let first = ref true in
  Printf.printf "\n%-12s %9s %9s %-11s %10s %10s %5s %9s\n" "workload" "bytes"
    "wire" "mode" "copied" "borrowed" "segs" "MB/s";
  List.iter
    (fun (name, cmint, named, roots, droots, value, bytes) ->
      let compile on =
        with_sg on (fun () ->
            Stub_opt.compile_encoder ~enc ~mint:cmint ~named roots)
      in
      let enc_sg = compile true and enc_ct = compile false in
      (* the plans behind those encoders, re-fetched from the shared
         cache (same keys, so no extra compilation): the structural
         verifier must be clean on everything this artifact executes *)
      let plan_verified on =
        with_sg on (fun () ->
            match
              Plan_verify.check_plan
                (Plan_cache.plan ~enc ~mint:cmint ~named roots)
            with
            | Ok () -> true
            | Error e ->
                Printf.printf "  verifier: %s\n"
                  (Plan_verify.error_to_string e);
                false)
      in
      check (name ^ ": verifier clean on SG plan") (plan_verified true);
      check (name ^ ": verifier clean on contiguous plan") (plan_verified false);
      let dec_opt = Stub_opt.compile_decoder ~enc ~mint:cmint ~named droots in
      let dec_naive = naive_decoder ~enc ~mint:cmint ~named droots in
      (* one instrumented encode per mode: copy accounting + segments *)
      let account on encoder =
        with_sg on (fun () ->
            let buf = Mbuf.acquire ~size:(bytes + 4096) () in
            Mbuf.reset_stats buf;
            encoder buf [| value |];
            (buf, Mbuf.stats buf, Mbuf.segment_count buf, Mbuf.pos buf))
      in
      let buf_sg, st_sg, segs_sg, wire_sg = account true enc_sg in
      (* decode straight over the segment list, before anything flattens *)
      let rt_ok dec =
        try Value.equal (dec (Mbuf.reader buf_sg)).(0) value
        with Mbuf.Short_buffer | Codec.Decode_error _ -> false
      in
      check (name ^ ": segmented decode round-trip (opt)") (rt_ok dec_opt);
      check (name ^ ": segmented decode round-trip (naive)") (rt_ok dec_naive);
      (* hand the message to the simulated link: length only, no flatten *)
      let sim = Sim_core.create () in
      let link = Link.ethernet_100 ~sim in
      let delivered = ref false in
      Link.transmit_mbuf link ~msg:buf_sg (fun () -> delivered := true);
      Sim_core.run sim;
      check (name ^ ": transmit_mbuf delivers") !delivered;
      check
        (name ^ ": decode and transmit never flatten")
        ((Mbuf.stats buf_sg).Mbuf.flattens = 0);
      (* byte equality across all engines *)
      let wire_of encoder =
        with_sg false (fun () ->
            let b = Mbuf.create (bytes + 4096) in
            encoder b [| value |];
            Mbuf.contents b)
      in
      let flat_sg = with_sg true (fun () -> Mbuf.contents buf_sg) in
      let flat_ct = wire_of enc_ct in
      let flat_naive = wire_of (naive_encoder ~enc ~mint:cmint ~named roots) in
      let flat_interp =
        wire_of (Stub_interp.compile_encoder ~enc ~mint:cmint ~named roots)
      in
      check (name ^ ": SG bytes = contiguous bytes") (Bytes.equal flat_sg flat_ct);
      check (name ^ ": SG bytes = naive engine") (Bytes.equal flat_sg flat_naive);
      check
        (name ^ ": SG bytes = interpretive engine")
        (Bytes.equal flat_sg flat_interp);
      Mbuf.release buf_sg;
      let buf_ct, st_ct, segs_ct, wire_ct = account false enc_ct in
      Mbuf.release buf_ct;
      check (name ^ ": wire length matches") (wire_sg = wire_ct);
      (* steady-state encode throughput, both modes *)
      let rate on encoder label =
        with_sg on (fun () ->
            let buf = Mbuf.acquire ~size:(bytes + 4096) () in
            encoder buf [| value |];
            let wire = Mbuf.pos buf in
            let ns =
              measure_ns label (fun () ->
                  Mbuf.reset buf;
                  encoder buf [| value |])
            in
            Mbuf.release buf;
            let v = mbps wire ns in
            if Float.is_nan v then 0. else v)
      in
      (* warm both closures once so measurement order does not bias the
         pair (the first-measured cell otherwise reads a few % low) *)
      ignore (rate true enc_sg (name ^ "/warm") : float);
      ignore (rate false enc_ct (name ^ "/warm") : float);
      let mb_sg = rate true enc_sg (name ^ "/sg") in
      let mb_ct = rate false enc_ct (name ^ "/contig") in
      let reduction =
        float_of_int st_ct.Mbuf.bytes_copied
        /. float_of_int (max 1 st_sg.Mbuf.bytes_copied)
      in
      Printf.printf "%-12s %9d %9d %-11s %10d %10d %5d %9.1f\n" name bytes
        wire_sg "sg" st_sg.Mbuf.bytes_copied st_sg.Mbuf.bytes_borrowed segs_sg
        mb_sg;
      Printf.printf "%-12s %9s %9s %-11s %10d %10d %5d %9.1f\n" "" "" ""
        "contiguous" st_ct.Mbuf.bytes_copied 0 segs_ct mb_ct;
      Buffer.add_string json
        (Printf.sprintf
           "%s\n    { \"workload\": %S, \"bytes\": %d, \"wire_bytes\": %d,\n\
           \      \"sg\": { \"bytes_copied\": %d, \"bytes_borrowed\": %d, \
            \"copies\": %d, \"borrows\": %d, \"seals\": %d, \"segments\": %d, \
            \"mbps\": %.1f },\n\
           \      \"contiguous\": { \"bytes_copied\": %d, \"segments\": %d, \
            \"mbps\": %.1f },\n\
           \      \"copy_reduction\": %.2f }"
           (if !first then "" else ",")
           name bytes wire_sg st_sg.Mbuf.bytes_copied st_sg.Mbuf.bytes_borrowed
           st_sg.Mbuf.copies st_sg.Mbuf.borrows st_sg.Mbuf.seals segs_sg mb_sg
           st_ct.Mbuf.bytes_copied segs_ct mb_ct reduction);
      first := false)
    (big_cases @ small_cases);
  Buffer.add_string json
    (Printf.sprintf "\n  ],\n  \"self_check_failed\": %b\n}\n" !sgwire_failed);
  let oc = open_out "BENCH_2.json" in
  Buffer.output_buffer oc json;
  close_out oc;
  if !sgwire_failed then
    print_endline "\nsgwire: SELF-CHECK FAILURES above; exiting non-zero"
  else
    print_endline
      "\nall byte-equality, round-trip, and no-flatten self-checks passed";
  print_endline "wrote BENCH_2.json\n"

(* ------------------------------------------------------------------ *)
(* decplan - compiled unmarshal plans: chunked, zero-copy decode       *)
(* ------------------------------------------------------------------ *)

(* Reports, and records in BENCH_3.json:
   - static decode-plan shape: op and bounds-check counts for the
     chunked plan against the per-datum plan (the decode mirror of the
     planopt node counts);
   - decode time per message for the plan-driven decoder against the
     closure-tree baseline it replaces and the naive and interpretive
     engines;
   - reader-side copy accounting for large string/byte-sequence
     payloads decoded with zero-copy views against the copying path,
     with throughput both ways ([--no-views] skips the view cells);
   - small-message decode times (plan vs closure) that must not regress;
   - decoder-closure and decode-plan cache hit rates on a repeated
     stub-compilation workload;
   - engine self-checks: all four decoders must agree on Value.equal,
     truncated messages must fail to decode in both plan and closure
     paths, a view decode must equal its copying decode, and a >=64KB
     payload decoded with views on must copy zero payload bytes.  Any
     failure makes the whole run exit non-zero.
   [--smoke] shrinks the payloads so CI can run it in a few seconds. *)

let decplan_failed = ref false
let no_views = ref false

let decplan () =
  print_endline "============================================================";
  print_endline " decplan - compiled unmarshal plans (chunked, zero-copy)";
  print_endline "============================================================";
  let check what ok =
    if not ok then begin
      decplan_failed := true;
      Printf.printf "  SELF-CHECK FAILED: %s\n" what
    end
  in
  let with_sg on f =
    let old = Mbuf.sg_enabled () in
    Mbuf.set_sg_enabled on;
    Fun.protect ~finally:(fun () -> Mbuf.set_sg_enabled old) f
  in
  let to_droot = function
    | Stub_opt.Dconst_int (v, k) -> Dplan_compile.Dconst_int (v, k)
    | Stub_opt.Dconst_str s -> Dplan_compile.Dconst_str s
    | Stub_opt.Dvalue (i, p) -> Dplan_compile.Dvalue (i, p)
  in
  let plan_totals (p : Dplan.plan) count =
    count p.Dplan.d_ops
    + List.fold_left
        (fun acc (_, f) -> acc + count f.Dplan.f_ops)
        0 p.Dplan.d_subs
  in
  let json = Buffer.create 2048 in
  Buffer.add_string json
    (Printf.sprintf
       "{\n  \"artifact\": \"decplan\",\n  \"smoke\": %b,\n  \
        \"views_enabled\": %b,\n  \"borrow_threshold\": %d"
       !smoke (not !no_views) (Mbuf.borrow_threshold ()));

  (* -- static plan shape: checks per message, chunked vs per-datum --- *)
  Printf.printf "\n%-6s %-13s %12s %12s %12s %12s\n" "enc" "operation"
    "ops/datum" "checks/datum" "ops/chunk" "checks/chunk";
  Buffer.add_string json ",\n  \"plan_shape\": [";
  let first = ref true in
  let rects_checks_reduced = ref false in
  List.iter
    (fun (ename, enc, style) ->
      let pc = Paper_fixtures.bench_presc style in
      List.iter
        (fun op ->
          let spec = Paper_fixtures.request_spec pc ~op in
          let droots = List.map to_droot spec.Paper_fixtures.ms_droots in
          let compile chunked =
            let p =
              Dplan_compile.compile ~enc ~mint:spec.Paper_fixtures.ms_mint
                ~named:spec.Paper_fixtures.ms_named ~chunked droots
            in
            if chunked then Pass.run_decode ~config:Opt_config.all p else p
          in
          let pd = compile false and ch = compile true in
          let dverified p =
            match Plan_verify.check_dplan p with
            | Ok () -> true
            | Error e ->
                Printf.printf "  verifier: %s\n"
                  (Plan_verify.error_to_string e);
                false
          in
          check
            (Printf.sprintf "%s/%s: verifier clean (per-datum)" ename op)
            (dverified pd);
          check
            (Printf.sprintf "%s/%s: verifier clean (chunked+passes)" ename op)
            (dverified ch);
          let ops_pd = plan_totals pd Dplan.count_ops
          and checks_pd = plan_totals pd Dplan.count_checks
          and ops_ch = plan_totals ch Dplan.count_ops
          and checks_ch = plan_totals ch Dplan.count_checks in
          (* the rectangle workload is the chunking showcase: four
             coordinate loads share one bounds check (dirents entries
             are a string plus one byte run — single checks already) *)
          if op = "send_rects" && checks_ch < checks_pd then
            rects_checks_reduced := true;
          Printf.printf "%-6s %-13s %12d %12d %12d %12d\n" ename op ops_pd
            checks_pd ops_ch checks_ch;
          Buffer.add_string json
            (Printf.sprintf
               "%s\n    { \"encoding\": %S, \"op\": %S, \"ops_per_datum\": \
                %d, \"checks_per_datum\": %d, \"ops_chunked\": %d, \
                \"checks_chunked\": %d }"
               (if !first then "" else ",")
               ename op ops_pd checks_pd ops_ch checks_ch);
          first := false)
        [ "send_ints"; "send_rects"; "send_dirents" ])
    [ ("xdr", Encoding.xdr, `Rpcgen); ("cdr", Encoding.cdr, `Corba) ];
  Buffer.add_string json "\n  ]";
  check "chunked rects plan has fewer bounds checks than per-datum"
    !rects_checks_reduced;

  (* -- differential self-check + decode throughput ------------------- *)
  let bytes = if !smoke then 4096 else 65536 in
  Printf.printf "\n%-6s %-13s %9s %10s %10s %10s %10s %9s\n" "enc" "workload"
    "wire" "plan ns" "closure" "naive" "interp" "plan MB/s";
  Buffer.add_string json ",\n  \"throughput\": [";
  first := true;
  List.iter
    (fun (ename, enc, style) ->
      let pc = Paper_fixtures.bench_presc style in
      List.iter
        (fun payload ->
          let op = Paper_fixtures.op_of_payload payload in
          let spec = Paper_fixtures.request_spec pc ~op in
          let mint = spec.Paper_fixtures.ms_mint
          and named = spec.Paper_fixtures.ms_named in
          let value = Paper_fixtures.payload payload ~bytes in
          let wire =
            with_sg false (fun () ->
                let buf = Mbuf.create (bytes + 4096) in
                Stub_opt.compile_encoder ~enc ~mint ~named
                  spec.Paper_fixtures.ms_roots buf [| value |];
                Mbuf.contents buf)
          in
          let droots = spec.Paper_fixtures.ms_droots in
          let dec_plan = Stub_opt.compile_decoder ~enc ~mint ~named droots in
          let dec_closure = Stub_opt.build_decoder ~enc ~mint ~named droots in
          let dec_naive = naive_decoder ~enc ~mint ~named droots in
          let dec_interp =
            Stub_interp.compile_decoder ~enc ~mint ~named droots
          in
          let decode d = (d (Mbuf.reader_of_bytes wire)).(0) in
          let v_plan = decode dec_plan in
          check
            (Printf.sprintf "%s/%s: plan decode = input value" ename op)
            (Value.equal v_plan value);
          check
            (Printf.sprintf "%s/%s: plan decode = closure decode" ename op)
            (Value.equal v_plan (decode dec_closure));
          check
            (Printf.sprintf "%s/%s: plan decode = naive decode" ename op)
            (Value.equal v_plan (decode dec_naive));
          check
            (Printf.sprintf "%s/%s: plan decode = interp decode" ename op)
            (Value.equal v_plan (decode dec_interp));
          let fails d cut =
            match
              d (Mbuf.reader_of_bytes ~len:cut wire)
            with
            | (_ : Value.t array) -> false
            | exception (Mbuf.Short_buffer | Codec.Decode_error _) -> true
          in
          let wlen = Bytes.length wire in
          check
            (Printf.sprintf "%s/%s: plan rejects truncated input" ename op)
            (fails dec_plan (wlen - 1) && fails dec_plan (wlen / 2));
          check
            (Printf.sprintf "%s/%s: closure rejects truncated input" ename op)
            (fails dec_closure (wlen - 1) && fails dec_closure (wlen / 2));
          let time label d =
            let ns =
              measure_ns label (fun () ->
                  ignore (d (Mbuf.reader_of_bytes wire) : Value.t array))
            in
            if Float.is_nan ns then 0. else ns
          in
          let ns_plan = time (ename ^ "/" ^ op ^ "/plan") dec_plan in
          let ns_closure = time (ename ^ "/" ^ op ^ "/closure") dec_closure in
          let ns_naive = time (ename ^ "/" ^ op ^ "/naive") dec_naive in
          let ns_interp = time (ename ^ "/" ^ op ^ "/interp") dec_interp in
          let mb_plan = if ns_plan > 0. then mbps wlen ns_plan else 0. in
          Printf.printf "%-6s %-13s %9d %10.0f %10.0f %10.0f %10.0f %9.1f\n"
            ename op wlen ns_plan ns_closure ns_naive ns_interp mb_plan;
          Buffer.add_string json
            (Printf.sprintf
               "%s\n    { \"encoding\": %S, \"op\": %S, \"bytes\": %d, \
                \"wire_bytes\": %d, \"plan_ns\": %.0f, \"closure_ns\": %.0f, \
                \"naive_ns\": %.0f, \"interp_ns\": %.0f, \"plan_mbps\": %.1f \
                }"
               (if !first then "" else ",")
               ename op bytes wlen ns_plan ns_closure ns_naive ns_interp
               mb_plan);
          first := false)
        [ `Ints; `Rects; `Dirents ])
    [ ("xdr", Encoding.xdr, `Rpcgen); ("cdr", Encoding.cdr, `Corba) ];
  Buffer.add_string json "\n  ]";

  (* -- zero-copy views on large payloads ----------------------------- *)
  let enc = Encoding.xdr in
  let vmint = Mint.create () in
  let str_t = Mint.string_ vmint ~max_len:None in
  let seq_t =
    Mint.array vmint ~elem:(Mint.char8 vmint) ~min_len:0 ~max_len:None
  in
  let seq_pres =
    Pres.Counted_seq { len_field = "len"; buf_field = "buf"; elem = Pres.Direct }
  in
  let root t pres =
    [
      Plan_compile.Rvalue
        (Mplan.Rparam { index = 0; name = "p"; deref = false }, t, pres);
    ]
  in
  let sizes =
    if !smoke then [ 4096; 65536 ] else [ 4096; 65536; 1048576; 4194304 ]
  in
  Printf.printf "\n%-10s %9s %-6s %10s %10s %5s %9s\n" "workload" "bytes"
    "mode" "copied" "viewed" "views" "MB/s";
  Buffer.add_string json ",\n  \"views\": [";
  first := true;
  List.iter
    (fun (name, t, pres, droot, mk) ->
      List.iter
        (fun bytes ->
          let value = mk bytes in
          let wire =
            with_sg false (fun () ->
                let buf = Mbuf.create (bytes + 4096) in
                Stub_opt.compile_encoder ~enc ~mint:vmint ~named:[]
                  (root t pres) buf [| value |];
                Mbuf.contents buf)
          in
          let wlen = Bytes.length wire in
          let dec_copy =
            Stub_opt.compile_decoder ~enc ~mint:vmint ~named:[] [ droot ]
          in
          (* view decisions are baked at closure-build time, so the
             decoder must be compiled with scatter-gather on *)
          let dec_view =
            with_sg true (fun () ->
                Stub_opt.compile_decoder ~enc ~mint:vmint ~named:[]
                  ~views:true [ droot ])
          in
          let account d =
            Mbuf.reset_reader_stats ();
            let v = (d (Mbuf.reader_of_bytes wire)).(0) in
            (v, Mbuf.reader_stats ())
          in
          let v_copy, st_copy = account dec_copy in
          let time label d =
            let ns =
              measure_ns label (fun () ->
                  ignore (d (Mbuf.reader_of_bytes wire) : Value.t array))
            in
            if Float.is_nan ns || ns <= 0. then 0. else mbps wlen ns
          in
          let mb_copy = time (name ^ "/copy") dec_copy in
          let view_cell =
            if !no_views then ""
            else begin
              let v_view, st_view = account dec_view in
              check
                (Printf.sprintf "%s/%d: view decode = copy decode" name bytes)
                (Value.equal v_view v_copy);
              if bytes >= 65536 then
                check
                  (Printf.sprintf "%s/%d: view decode copies zero payload \
                                   bytes" name bytes)
                  (st_view.Mbuf.rbytes_copied = 0);
              let mb_view = time (name ^ "/view") dec_view in
              Printf.printf "%-10s %9d %-6s %10d %10d %5d %9.1f\n" name bytes
                "view" st_view.Mbuf.rbytes_copied st_view.Mbuf.rbytes_viewed
                st_view.Mbuf.rviews mb_view;
              Printf.sprintf
                "\n      \"view\": { \"bytes_copied\": %d, \"bytes_viewed\": \
                 %d, \"views\": %d, \"mbps\": %.1f },"
                st_view.Mbuf.rbytes_copied st_view.Mbuf.rbytes_viewed
                st_view.Mbuf.rviews mb_view
            end
          in
          Printf.printf "%-10s %9d %-6s %10d %10d %5d %9.1f\n" name bytes
            "copy" st_copy.Mbuf.rbytes_copied st_copy.Mbuf.rbytes_viewed
            st_copy.Mbuf.rviews mb_copy;
          Buffer.add_string json
            (Printf.sprintf
               "%s\n    { \"workload\": %S, \"bytes\": %d, \"wire_bytes\": \
                %d,%s\n      \"copy\": { \"bytes_copied\": %d, \"mbps\": \
                %.1f } }"
               (if !first then "" else ",")
               name bytes wlen view_cell st_copy.Mbuf.rbytes_copied mb_copy);
          first := false)
        sizes)
    [
      ( "string", str_t, Pres.Terminated_string,
        Stub_opt.Dvalue (str_t, Pres.Terminated_string),
        fun n -> Value.Vstring (String.init n (fun i -> Char.chr (97 + (i mod 23)))) );
      ( "byteseq", seq_t, seq_pres,
        Stub_opt.Dvalue (seq_t, seq_pres),
        fun n -> Value.Vbytes (Bytes.init n (fun i -> Char.chr (i land 0xff))) );
    ];
  Buffer.add_string json "\n  ]";

  (* -- small messages: the plan path must not cost on the fast path -- *)
  Printf.printf "\n%-13s %6s %10s %10s %7s\n" "workload" "bytes" "plan ns"
    "closure" "ratio";
  Buffer.add_string json ",\n  \"small\": [";
  first := true;
  List.iter
    (fun (payload, bytes) ->
      let pc = Paper_fixtures.bench_presc `Rpcgen in
      let op = Paper_fixtures.op_of_payload payload in
      let spec = Paper_fixtures.request_spec pc ~op in
      let mint = spec.Paper_fixtures.ms_mint
      and named = spec.Paper_fixtures.ms_named in
      let value = Paper_fixtures.payload payload ~bytes in
      let wire =
        with_sg false (fun () ->
            let buf = Mbuf.create 4096 in
            Stub_opt.compile_encoder ~enc:Encoding.xdr ~mint ~named
              spec.Paper_fixtures.ms_roots buf [| value |];
            Mbuf.contents buf)
      in
      let droots = spec.Paper_fixtures.ms_droots in
      let dec_plan =
        Stub_opt.compile_decoder ~enc:Encoding.xdr ~mint ~named droots
      in
      let dec_closure =
        Stub_opt.build_decoder ~enc:Encoding.xdr ~mint ~named droots
      in
      let time label d =
        (* warm both cells so measurement order does not bias the pair *)
        ignore
          (measure_ns (label ^ "/warm") (fun () ->
               ignore (d (Mbuf.reader_of_bytes wire) : Value.t array))
            : float);
        let ns =
          measure_ns label (fun () ->
              ignore (d (Mbuf.reader_of_bytes wire) : Value.t array))
        in
        if Float.is_nan ns then 0. else ns
      in
      let ns_plan = time (op ^ "/small/plan") dec_plan in
      let ns_closure = time (op ^ "/small/closure") dec_closure in
      let ratio = if ns_closure > 0. then ns_plan /. ns_closure else 0. in
      Printf.printf "%-13s %6d %10.0f %10.0f %7.2f\n" op bytes ns_plan
        ns_closure ratio;
      Buffer.add_string json
        (Printf.sprintf
           "%s\n    { \"op\": %S, \"bytes\": %d, \"plan_ns\": %.0f, \
            \"closure_ns\": %.0f, \"plan_vs_closure\": %.2f }"
           (if !first then "" else ",")
           op bytes ns_plan ns_closure ratio);
      first := false)
    [ (`Ints, 64); (`Dirents, 256) ];
  Buffer.add_string json "\n  ]";

  (* -- decoder cache hit rates --------------------------------------- *)
  Plan_cache.reset_all ();
  let rounds = 20 in
  for _round = 1 to rounds do
    List.iter
      (fun (_, enc, style) ->
        let pc = Paper_fixtures.bench_presc style in
        List.iter
          (fun op ->
            let spec = Paper_fixtures.request_spec pc ~op in
            ignore
              (Stub_opt.compile_decoder ~enc ~mint:spec.Paper_fixtures.ms_mint
                 ~named:spec.Paper_fixtures.ms_named
                 spec.Paper_fixtures.ms_droots
                : Stub_opt.decoder);
            (* hit the plan cache directly too: a decoder-closure cache
               hit never reaches it (dump-plan and the C back ends do) *)
            ignore
              (Plan_cache.dplan ~enc ~mint:spec.Paper_fixtures.ms_mint
                 ~named:spec.Paper_fixtures.ms_named
                 (List.map to_droot spec.Paper_fixtures.ms_droots)
                : Dplan.plan))
          [ "send_ints"; "send_rects"; "send_dirents" ])
      [ ("xdr", Encoding.xdr, `Rpcgen); ("cdr", Encoding.cdr, `Corba) ]
  done;
  let per_cache =
    List.filter
      (fun (name, _) -> name = "stub_opt.decoder" || name = "dplan")
      (Plan_cache.all_stats ())
  in
  Printf.printf "\ndecoder caches over %d rounds x 6 stub compilations:\n"
    rounds;
  Buffer.add_string json
    (Printf.sprintf ",\n  \"cache\": { \"rounds\": %d, \"per_cache\": ["
       rounds);
  first := true;
  List.iter
    (fun (name, st) ->
      cache_report_line name st;
      check
        (Printf.sprintf "%s cache: warm compilations hit" name)
        (st.Plan_cache.hits > 0 && st.Plan_cache.misses <= st.Plan_cache.entries + 6);
      Buffer.add_string json
        (Printf.sprintf "%s\n      %s"
           (if !first then "" else ",")
           (cache_json name st));
      first := false)
    per_cache;
  check "decoder caches registered" (List.length per_cache = 2);
  Buffer.add_string json "\n    ] }";

  Buffer.add_string json
    (Printf.sprintf ",\n  \"self_check_failed\": %b\n}\n" !decplan_failed);
  let oc = open_out "BENCH_3.json" in
  Buffer.output_buffer oc json;
  close_out oc;
  if !decplan_failed then
    print_endline "\ndecplan: SELF-CHECK FAILURES above; exiting non-zero"
  else
    print_endline
      "\nall differential, truncation, zero-copy, and cache self-checks passed";
  print_endline "wrote BENCH_3.json\n"

(* ------------------------------------------------------------------ *)
(* tracematrix - per-pass traces over the full compile matrix           *)
(* ------------------------------------------------------------------ *)

(* Runs the optimizer with per-pass tracing over every (encoding x
   operation x compilation mode) cell of the paper's Bench matrix, both
   sides, with the structural verifier after every pass, and merges the
   result into BENCH_1.json under a "trace_matrix" key (next to the
   planopt report; standalone if that file is absent).  Self-checks:
   - the final (nodes, checks) of every cell matches the pinned table
     below, so a plan-size regression anywhere in the matrix fails CI;
   - no pass ever increases the node count;
   - the verifier is clean after every pass of every cell.
   Compile-only, so [--smoke] is a no-op here. *)

let tracematrix_failed = ref false

(* Pinned (nodes, checks) after the full pipeline, per
   (encoding, operation, mode, side).  Regenerate by running
   `bench/main.exe tracematrix` and copying the rows it prints for any
   MISMATCH/MISSING cell — but first understand why the plans changed. *)
let tracematrix_expected =
  [
    (("xdr", "send_ints", "chunked", "encode"), (3, 2));
    (("xdr", "send_ints", "chunked", "decode"), (3, 3));
    (("xdr", "send_ints", "per-datum", "encode"), (3, 2));
    (("xdr", "send_ints", "per-datum", "decode"), (3, 3));
    (("xdr", "send_rects", "chunked", "encode"), (10, 3));
    (("xdr", "send_rects", "chunked", "decode"), (8, 3));
    (("xdr", "send_rects", "per-datum", "encode"), (10, 3));
    (("xdr", "send_rects", "per-datum", "decode"), (8, 3));
    (("xdr", "send_dirents", "chunked", "encode"), (37, 4));
    (("xdr", "send_dirents", "chunked", "decode"), (7, 6));
    (("xdr", "send_dirents", "per-datum", "encode"), (37, 4));
    (("xdr", "send_dirents", "per-datum", "decode"), (7, 6));
    (("cdr", "send_ints", "chunked", "encode"), (2, 2));
    (("cdr", "send_ints", "chunked", "decode"), (2, 4));
    (("cdr", "send_ints", "per-datum", "encode"), (2, 2));
    (("cdr", "send_ints", "per-datum", "decode"), (2, 4));
    (("cdr", "send_rects", "chunked", "encode"), (10, 3));
    (("cdr", "send_rects", "chunked", "decode"), (8, 4));
    (("cdr", "send_rects", "per-datum", "encode"), (10, 3));
    (("cdr", "send_rects", "per-datum", "decode"), (8, 4));
    (("cdr", "send_dirents", "chunked", "encode"), (38, 4));
    (("cdr", "send_dirents", "chunked", "decode"), (7, 7));
    (("cdr", "send_dirents", "per-datum", "encode"), (38, 4));
    (("cdr", "send_dirents", "per-datum", "decode"), (7, 7));
    (("mach3", "send_ints", "chunked", "encode"), (5, 2));
    (("mach3", "send_ints", "chunked", "decode"), (3, 3));
    (("mach3", "send_ints", "per-datum", "encode"), (5, 2));
    (("mach3", "send_ints", "per-datum", "decode"), (3, 3));
    (("mach3", "send_rects", "chunked", "encode"), (17, 3));
    (("mach3", "send_rects", "chunked", "decode"), (9, 3));
    (("mach3", "send_rects", "per-datum", "encode"), (17, 3));
    (("mach3", "send_rects", "per-datum", "decode"), (9, 3));
    (("mach3", "send_dirents", "chunked", "encode"), (44, 5));
    (("mach3", "send_dirents", "chunked", "decode"), (10, 8));
    (("mach3", "send_dirents", "per-datum", "encode"), (44, 5));
    (("mach3", "send_dirents", "per-datum", "decode"), (10, 8));
  ]

let tracematrix () =
  print_endline "============================================================";
  print_endline " tracematrix - per-pass traces over the full compile matrix";
  print_endline "============================================================";
  let check what ok =
    if not ok then begin
      tracematrix_failed := true;
      Printf.printf "  SELF-CHECK FAILED: %s\n" what
    end
  in
  let json = Buffer.create 4096 in
  Buffer.add_string json "{ \"cells\": [";
  let first_cell = ref true in
  Printf.printf "\n%-6s %-13s %-10s %-6s %8s %8s %7s %6s\n" "enc" "operation"
    "mode" "side" "nodes" "checks" "passes" "rounds";
  let do_side ~ename ~op ~mode ~(side : _ Pass.side) ~run raw =
    let traces : Pass.trace list ref = ref [] in
    let config =
      { (Opt_config.all) with Opt_config.verify = true }
    in
    let opt = run ~config ~on_trace:(fun tr -> traces := tr :: !traces) raw in
    let traces = List.rev !traces in
    let cell = Printf.sprintf "%s/%s/%s/%s" ename op mode side.Pass.s_name in
    List.iter
      (fun (tr : Pass.trace) ->
        check
          (Printf.sprintf "%s: pass %s grew the plan (%d -> %d)" cell
             tr.Pass.tr_pass tr.Pass.tr_nodes_before tr.Pass.tr_nodes_after)
          (tr.Pass.tr_nodes_after <= tr.Pass.tr_nodes_before);
        check
          (Printf.sprintf "%s: pass %s ran unverified" cell tr.Pass.tr_pass)
          tr.Pass.tr_verified)
      traces;
    check
      (Printf.sprintf "%s: verifier clean on the final plan" cell)
      (match side.Pass.s_verify opt with
      | Ok () -> true
      | Error e ->
          Printf.printf "  verifier: %s\n" (Plan_verify.error_to_string e);
          false);
    let nodes = side.Pass.s_nodes opt and checks = side.Pass.s_checks opt in
    let rounds =
      List.fold_left (fun m (tr : Pass.trace) -> max m tr.Pass.tr_round) 1
        traces
    in
    Printf.printf "%-6s %-13s %-10s %-6s %8d %8d %7d %6d\n" ename op mode
      side.Pass.s_name nodes checks (List.length traces) rounds;
    let key = (ename, op, mode, side.Pass.s_name) in
    (match List.assoc_opt key tracematrix_expected with
    | Some (en, ec) when en = nodes && ec = checks -> ()
    | Some (en, ec) ->
        check
          (Printf.sprintf
             "%s: pinned (%d nodes, %d checks), got (%d, %d) — \
              regenerate:  ((%S, %S, %S, %S), (%d, %d));"
             cell en ec nodes checks ename op mode side.Pass.s_name nodes
             checks)
          false
    | None ->
        check
          (Printf.sprintf
             "%s: no pinned expectation — add:  ((%S, %S, %S, %S), (%d, %d));"
             cell ename op mode side.Pass.s_name nodes checks)
          false);
    Buffer.add_string json
      (Printf.sprintf
         "%s\n    { \"encoding\": %S, \"op\": %S, \"mode\": %S, \"side\": \
          %S, \"nodes\": %d, \"checks\": %d, \"rounds\": %d, \"passes\": [%s] }"
         (if !first_cell then "" else ",")
         ename op mode side.Pass.s_name nodes checks rounds
         (String.concat ", "
            (List.map
               (fun (tr : Pass.trace) ->
                 Printf.sprintf
                   "{ \"pass\": %S, \"round\": %d, \"nodes_before\": %d, \
                    \"nodes_after\": %d, \"checks_before\": %d, \
                    \"checks_after\": %d }"
                   tr.Pass.tr_pass tr.Pass.tr_round tr.Pass.tr_nodes_before
                   tr.Pass.tr_nodes_after tr.Pass.tr_checks_before
                   tr.Pass.tr_checks_after)
               traces)));
    first_cell := false
  in
  List.iter
    (fun (ename, enc, style) ->
      let pc = Paper_fixtures.bench_presc style in
      List.iter
        (fun op ->
          let spec = Paper_fixtures.request_spec pc ~op in
          List.iter
            (fun (mode, chunked) ->
              let raw =
                Plan_compile.compile ~enc ~mint:spec.Paper_fixtures.ms_mint
                  ~named:spec.Paper_fixtures.ms_named ~chunked
                  spec.Paper_fixtures.ms_roots
              in
              do_side ~ename ~op ~mode ~side:Pass.encode_side
                ~run:(fun ~config ~on_trace p ->
                  Pass.run_encode ~config ~on_trace p)
                raw;
              let draw =
                Dplan_compile.compile ~enc ~mint:spec.Paper_fixtures.ms_mint
                  ~named:spec.Paper_fixtures.ms_named ~chunked
                  (List.map
                     (function
                       | Stub_opt.Dconst_int (v, k) ->
                           Dplan_compile.Dconst_int (v, k)
                       | Stub_opt.Dconst_str s -> Dplan_compile.Dconst_str s
                       | Stub_opt.Dvalue (i, p) -> Dplan_compile.Dvalue (i, p))
                     spec.Paper_fixtures.ms_droots)
              in
              do_side ~ename ~op ~mode ~side:Pass.decode_side
                ~run:(fun ~config ~on_trace p ->
                  Pass.run_decode ~config ~on_trace p)
                draw)
            [ ("chunked", true); ("per-datum", false) ])
        [ "send_ints"; "send_rects"; "send_dirents" ])
    [
      ("xdr", Encoding.xdr, `Rpcgen);
      ("cdr", Encoding.cdr, `Corba);
      ("mach3", Encoding.mach3, `Fluke);
    ];
  Buffer.add_string json "\n  ] }";
  let tm_json = Buffer.contents json in
  (* merge into the planopt report when one is present: BENCH_1.json is
     the optimizer's artifact file, and consumers want one object *)
  let marker = ",\n  \"trace_matrix\"" in
  let read_all path =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let find_sub s sub =
    let n = String.length s and m = String.length sub in
    let rec go i =
      if i + m > n then None
      else if String.sub s i m = sub then Some i
      else go (i + 1)
    in
    go 0
  in
  let rstrip s =
    let n = ref (String.length s) in
    while
      !n > 0
      && (match s.[!n - 1] with ' ' | '\n' | '\t' | '\r' -> true | _ -> false)
    do
      decr n
    done;
    String.sub s 0 !n
  in
  let base =
    if Sys.file_exists "BENCH_1.json" then begin
      let s = read_all "BENCH_1.json" in
      match find_sub s marker with
      | Some i -> Some (String.sub s 0 i) (* re-run: replace our key *)
      | None ->
          let s = rstrip s in
          let n = String.length s in
          if n > 0 && s.[n - 1] = '}' then
            Some (rstrip (String.sub s 0 (n - 1)))
          else None
    end
    else None
  in
  let merged =
    match base with
    | Some b ->
        Printf.sprintf "%s%s: %s,\n  \"tracematrix_failed\": %b\n}\n" b marker
          tm_json !tracematrix_failed
    | None ->
        Printf.sprintf
          "{\n  \"artifact\": \"tracematrix\",\n  \"trace_matrix\": %s,\n\
          \  \"self_check_failed\": %b\n}\n"
          tm_json !tracematrix_failed
  in
  (match Obs_json.parse merged with
  | Ok _ -> ()
  | Error msg -> check (Printf.sprintf "merged BENCH_1.json parses: %s" msg) false);
  let oc = open_out "BENCH_1.json" in
  output_string oc merged;
  close_out oc;
  if !tracematrix_failed then
    print_endline "\ntracematrix: SELF-CHECK FAILURES above; exiting non-zero"
  else
    print_endline
      "\nall matrix pins, node-monotonicity, and verifier checks passed";
  Printf.printf "%s trace_matrix into BENCH_1.json\n\n"
    (match base with Some _ -> "merged" | None -> "wrote")

(* ------------------------------------------------------------------ *)

(* The server-loop artifact: the concurrent RPC server (lib/serve) under
   a closed-loop echo workload, swept across connection counts.  Writes
   BENCH_4.json with requests/sec, shed rate, and latency percentiles
   per point.  Self-checks:
   - every Ok reply byte-identical to its request payload (diff_ok);
   - request accounting closed (frames = accepted + shed + errors, and
     every logical request ends Ok or shed-final);
   - throughput scales with connections until the server saturates
     (rps grows 1 -> 8 -> 32, then holds within 10% at 64);
   - no shedding at 1 connection, shedding present at 64 (the in-flight
     budget is 32, so 64 closed-loop clients must overrun it);
   - the in-flight high-water mark respects the budget;
   - pooled writers/readers all return (no leak across the sweep);
   - the sweep hits the compiled-plan caches (hot-path reuse).
   [--smoke] shrinks requests-per-connection so CI runs in seconds. *)

let serve_failed = ref false

let serve () =
  print_endline "============================================================";
  print_endline " serve - concurrent RPC server loop vs connection count";
  print_endline "============================================================";
  let check what ok =
    if not ok then begin
      serve_failed := true;
      Printf.printf "  SELF-CHECK FAILED: %s\n" what
    end
  in
  let requests_per_conn = if !smoke then 60 else 300 in
  let cfg = Rpc_serve.default_config in
  let pool_before = Mbuf.pool_stats () in
  let cache_hits_before =
    List.fold_left
      (fun acc (_, s) -> acc + s.Plan_cache.hits)
      0 (Plan_cache.all_stats ())
  in
  Printf.printf "\n%d requests/connection, budget %d in flight, echo on %s\n"
    requests_per_conn cfg.Rpc_serve.max_in_flight "xdr send_ints (1 KiB)";
  Printf.printf "\n%6s %9s %8s %7s %9s %9s %9s %6s\n" "conns" "requests"
    "ok" "shed" "rps" "p50us" "p99us" "hw";
  let sweep =
    List.map
      (fun conns ->
        let p = Rpc_serve.run_workload ~requests_per_conn ~conns () in
        Printf.printf "%6d %9d %8d %7d %9.0f %9.0f %9.0f %6d\n" conns
          p.Rpc_serve.sp_requests p.Rpc_serve.sp_ok
          p.Rpc_serve.sp_stats.Rpc_serve.st_shed p.Rpc_serve.sp_rps
          p.Rpc_serve.sp_p50_us p.Rpc_serve.sp_p99_us
          p.Rpc_serve.sp_stats.Rpc_serve.st_in_flight_hw;
        p)
      [ 1; 8; 32; 64 ]
  in
  List.iter
    (fun (p : Rpc_serve.sweep_point) ->
      let st = p.Rpc_serve.sp_stats in
      let tag = Printf.sprintf "%d conns" p.Rpc_serve.sp_conns in
      check (tag ^ ": every Ok reply byte-identical to its request")
        p.Rpc_serve.sp_diff_ok;
      check (tag ^ ": frame accounting closed")
        (st.Rpc_serve.st_frames_in
        = st.Rpc_serve.st_accepted + st.Rpc_serve.st_shed
          + st.Rpc_serve.st_bad_request + st.Rpc_serve.st_unknown_op);
      check (tag ^ ": every logical request resolved")
        (p.Rpc_serve.sp_ok + p.Rpc_serve.sp_shed_final
        = p.Rpc_serve.sp_requests);
      check (tag ^ ": no protocol errors on a clean workload")
        (st.Rpc_serve.st_bad_request = 0 && st.Rpc_serve.st_unknown_op = 0
        && st.Rpc_serve.st_killed_conns = 0);
      check (tag ^ ": in-flight high water within budget")
        (st.Rpc_serve.st_in_flight_hw <= cfg.Rpc_serve.max_in_flight))
    sweep;
  let rps n =
    match
      List.find_opt (fun p -> p.Rpc_serve.sp_conns = n) sweep
    with
    | Some p -> p.Rpc_serve.sp_rps
    | None -> 0.
  in
  let shed_rate n =
    match
      List.find_opt (fun p -> p.Rpc_serve.sp_conns = n) sweep
    with
    | Some p -> p.Rpc_serve.sp_shed_rate
    | None -> 1.
  in
  check "throughput scales 1 -> 8 connections (> 1.3x)"
    (rps 8 > 1.3 *. rps 1);
  check "throughput still grows 8 -> 32 connections" (rps 32 > rps 8);
  check "saturated throughput holds at 64 connections (>= 0.9x of 32)"
    (rps 64 >= 0.9 *. rps 32);
  check "no shedding at 1 connection" (shed_rate 1 = 0.);
  check "backpressure sheds at 64 connections" (shed_rate 64 > 0.);
  let pool_after = Mbuf.pool_stats () in
  check "no pooled writers leaked across the sweep"
    (pool_after.Mbuf.writers_outstanding
    = pool_before.Mbuf.writers_outstanding);
  check "no pooled readers leaked across the sweep"
    (pool_after.Mbuf.readers_outstanding
    = pool_before.Mbuf.readers_outstanding);
  let cache_hits_after =
    List.fold_left
      (fun acc (_, s) -> acc + s.Plan_cache.hits)
      0 (Plan_cache.all_stats ())
  in
  check "the sweep reuses compiled plans through the cache"
    (cache_hits_after > cache_hits_before);
  let json = Buffer.create 4096 in
  Buffer.add_string json
    (Printf.sprintf
       "{\n  \"artifact\": \"serve\",\n  \"smoke\": %b,\n\
       \  \"config\": { \"max_in_flight\": %d, \"service_fixed_us\": %.1f, \
        \"flush_delay_us\": %.1f, \"requests_per_conn\": %d },\n\
       \  \"sweep\": ["
       !smoke cfg.Rpc_serve.max_in_flight
       (cfg.Rpc_serve.service_fixed_s *. 1e6)
       (cfg.Rpc_serve.flush_delay_s *. 1e6)
       requests_per_conn);
  List.iteri
    (fun i (p : Rpc_serve.sweep_point) ->
      let st = p.Rpc_serve.sp_stats in
      Buffer.add_string json
        (Printf.sprintf
           "%s\n    { \"conns\": %d, \"requests\": %d, \"ok\": %d, \
            \"shed\": %d, \"shed_final\": %d, \"retransmits\": %d, \
            \"rps\": %.1f, \"shed_rate\": %.4f, \"p50_us\": %.1f, \
            \"p99_us\": %.1f, \"in_flight_hw\": %d, \"flushes\": %d, \
            \"coalesced\": %d, \"bytes_in\": %d, \"bytes_out\": %d }"
           (if i = 0 then "" else ",")
           p.Rpc_serve.sp_conns p.Rpc_serve.sp_requests p.Rpc_serve.sp_ok
           st.Rpc_serve.st_shed p.Rpc_serve.sp_shed_final
           p.Rpc_serve.sp_retransmits p.Rpc_serve.sp_rps
           p.Rpc_serve.sp_shed_rate p.Rpc_serve.sp_p50_us
           p.Rpc_serve.sp_p99_us st.Rpc_serve.st_in_flight_hw
           st.Rpc_serve.st_flushes st.Rpc_serve.st_coalesced
           st.Rpc_serve.st_bytes_in st.Rpc_serve.st_bytes_out))
    sweep;
  Buffer.add_string json
    (Printf.sprintf "\n  ],\n  \"self_check_failed\": %b\n}\n" !serve_failed);
  (match Obs_json.parse (Buffer.contents json) with
  | Ok _ -> ()
  | Error msg -> check (Printf.sprintf "BENCH_4.json parses: %s" msg) false);
  let oc = open_out "BENCH_4.json" in
  Buffer.output_buffer oc json;
  close_out oc;
  if !serve_failed then
    print_endline "\nserve: SELF-CHECK FAILURES above; exiting non-zero"
  else
    print_endline
      "\nall differential, accounting, scaling, backpressure, and \
       pool-leak checks passed";
  print_endline "wrote BENCH_4.json\n"

(* ------------------------------------------------------------------ *)
(* stage - tier-1 staged closures vs the tier-0 plan executor           *)
(* ------------------------------------------------------------------ *)

(* The tiered-execution artifact: the staged specializer
   (Stub_opt.staged_encoder_of_plan / staged_decoder_of_dplan) against
   the tier-0 plan executor on the paper's three workloads, across all
   three wire encodings, both directions.  Writes BENCH_5.json.
   Self-checks:
   - every staged encoder produces byte-identical output to tier 0;
   - every staged decoder returns Value.equal results and rejects
     truncated input with the same typed errors as tier 0;
   - every plan in the matrix has a flat-closure form (the bench
     workloads are non-recursive, so staging must not fall back);
   - the tentpole gate: on the 64KB directory workload, the staged
     encode+decode round trip is >= 1.15x tier 0 for at least two
     encodings.  (The gate is on the combined time: encode is where
     specialization pays — constant images, grouped field runs — while
     decode is dominated by allocating the result values, so staged
     decode sits near parity and both per-side speedups are recorded
     per row for inspection.)
   [--full] adds 1KB rows (small messages must not regress through
   staging); the 64KB gate rows run in every mode, smoke included. *)

let stage_failed = ref false

let stage () =
  print_endline "============================================================";
  print_endline " stage - tier-1 staged closures vs the tier-0 plan executor";
  print_endline "============================================================";
  let check what ok =
    if not ok then begin
      stage_failed := true;
      Printf.printf "  SELF-CHECK FAILED: %s\n" what
    end
  in
  let sizes = if !full then [ 1024; 65536 ] else [ 65536 ] in
  let min_speedup = 1.15 and need_encodings = 2 in
  let json = Buffer.create 4096 in
  Buffer.add_string json
    (Printf.sprintf
       "{\n  \"artifact\": \"stage\",\n  \"smoke\": %b,\n\
       \  \"stage_threshold\": %d,\n  \"rows\": ["
       !smoke
       (Opt_config.stage_threshold ()));
  Printf.printf "\n%-6s %-13s %9s %-6s %10s %10s %8s\n" "enc" "workload"
    "wire" "side" "tier0 ns" "staged" "speedup";
  let first = ref true in
  (* encoding -> (encode, decode, combined speedup) on 64KB dirents *)
  let gate_rows : (string * (float * float * float)) list ref = ref [] in
  List.iter
    (fun (ename, enc, style) ->
      let pc = Paper_fixtures.bench_presc style in
      List.iter
        (fun payload ->
          let op = Paper_fixtures.op_of_payload payload in
          let spec = Paper_fixtures.request_spec pc ~op in
          let mint = spec.Paper_fixtures.ms_mint
          and named = spec.Paper_fixtures.ms_named in
          List.iter
            (fun bytes ->
              let tag = Printf.sprintf "%s/%s/%dB" ename op bytes in
              let value = Paper_fixtures.payload payload ~bytes in
              (* -- encode: tier 0 vs staged ------------------------- *)
              let plan =
                Plan_cache.plan ~enc ~mint ~named
                  spec.Paper_fixtures.ms_roots
              in
              let enc0 = Stub_opt.encoder_of_plan ~enc plan in
              let enc1 =
                match Stub_opt.staged_encoder_of_plan ~enc plan with
                | Some e -> e
                | None ->
                    check (tag ^ ": encode plan has a flat-closure form")
                      false;
                    enc0
              in
              let buf0 = Mbuf.create (bytes + 8192)
              and buf1 = Mbuf.create (bytes + 8192) in
              enc0 buf0 [| value |];
              enc1 buf1 [| value |];
              let wire = Mbuf.contents buf0 in
              let wlen = Bytes.length wire in
              check (tag ^ ": staged encode byte-identical to tier 0")
                (Bytes.equal wire (Mbuf.contents buf1));
              let time_encode which e =
                let buf = Mbuf.create (bytes + 8192) in
                let ns =
                  measure_ns
                    (tag ^ "/enc/" ^ which)
                    (fun () ->
                      Mbuf.reset buf;
                      e buf [| value |])
                in
                if Float.is_nan ns then 0. else ns
              in
              let ns_e0 = time_encode "tier0" enc0 in
              let ns_e1 = time_encode "staged" enc1 in
              (* -- decode: tier 0 vs staged ------------------------- *)
              let droots =
                List.map
                  (function
                    | Stub_opt.Dconst_int (v, k) ->
                        Dplan_compile.Dconst_int (v, k)
                    | Stub_opt.Dconst_str s -> Dplan_compile.Dconst_str s
                    | Stub_opt.Dvalue (i, p) -> Dplan_compile.Dvalue (i, p))
                  spec.Paper_fixtures.ms_droots
              in
              let dplan = Plan_cache.dplan ~enc ~mint ~named droots in
              let dec0 = Stub_opt.decoder_of_dplan ~enc dplan in
              let dec1 =
                match Stub_opt.staged_decoder_of_dplan ~enc dplan with
                | Some d -> d
                | None ->
                    check (tag ^ ": decode plan has a flat-closure form")
                      false;
                    dec0
              in
              let v0 = (dec0 (Mbuf.reader_of_bytes wire)).(0) in
              check (tag ^ ": tier-0 decode returns the input value")
                (Value.equal v0 value);
              check (tag ^ ": staged decode = tier-0 decode")
                (Value.equal (dec1 (Mbuf.reader_of_bytes wire)).(0) v0);
              let fails d cut =
                match d (Mbuf.reader_of_bytes ~len:cut wire) with
                | (_ : Value.t array) -> false
                | exception (Mbuf.Short_buffer | Codec.Decode_error _) ->
                    true
              in
              check (tag ^ ": staged decode rejects truncated input")
                (fails dec1 (wlen - 1) && fails dec1 (wlen / 2));
              check (tag ^ ": tier-0 decode rejects truncated input")
                (fails dec0 (wlen - 1) && fails dec0 (wlen / 2));
              let time_decode which d =
                let ns =
                  measure_ns
                    (tag ^ "/dec/" ^ which)
                    (fun () ->
                      ignore (d (Mbuf.reader_of_bytes wire) : Value.t array))
                in
                if Float.is_nan ns then 0. else ns
              in
              let ns_d0 = time_decode "tier0" dec0 in
              let ns_d1 = time_decode "staged" dec1 in
              let speedup t0 t1 = if t1 > 0. then t0 /. t1 else 0. in
              let sp_e = speedup ns_e0 ns_e1
              and sp_d = speedup ns_d0 ns_d1 in
              Printf.printf "%-6s %-13s %9d %-6s %10.0f %10.0f %7.2fx\n"
                ename op wlen "encode" ns_e0 ns_e1 sp_e;
              Printf.printf "%-6s %-13s %9d %-6s %10.0f %10.0f %7.2fx\n"
                ename op wlen "decode" ns_d0 ns_d1 sp_d;
              if op = "send_dirents" && bytes = 65536 then
                gate_rows :=
                  !gate_rows
                  @ [
                      ( ename,
                        (sp_e, sp_d, speedup (ns_e0 +. ns_d0) (ns_e1 +. ns_d1))
                      );
                    ];
              Buffer.add_string json
                (Printf.sprintf
                   "%s\n    { \"encoding\": %S, \"op\": %S, \"bytes\": %d, \
                    \"wire_bytes\": %d, \"encode_tier0_ns\": %.0f, \
                    \"encode_staged_ns\": %.0f, \"encode_speedup\": %.3f, \
                    \"decode_tier0_ns\": %.0f, \"decode_staged_ns\": %.0f, \
                    \"decode_speedup\": %.3f }"
                   (if !first then "" else ",")
                   ename op bytes wlen ns_e0 ns_e1 sp_e ns_d0 ns_d1 sp_d);
              first := false)
            sizes)
        [ `Ints; `Rects; `Dirents ])
    [
      ("xdr", Encoding.xdr, `Rpcgen);
      ("cdr", Encoding.cdr, `Corba);
      ("mach3", Encoding.mach3, `Fluke);
    ];
  Buffer.add_string json "\n  ]";
  (* -- the tentpole gate --------------------------------------------- *)
  let passing =
    List.filter (fun (_, (_, _, c)) -> c >= min_speedup) !gate_rows
  in
  Printf.printf
    "\n64KB dirents gate (encode+decode round trip >= %.2fx, >= %d \
     encodings):\n"
    min_speedup need_encodings;
  List.iter
    (fun (ename, (e, d, c)) ->
      Printf.printf
        "  %-6s encode %5.2fx  decode %5.2fx  combined %5.2fx  %s\n" ename e
        d c
        (if c >= min_speedup then "pass" else "below"))
    !gate_rows;
  check
    (Printf.sprintf
       "staged encode+decode >= %.2fx tier 0 on 64KB dirents for >= %d \
        encodings"
       min_speedup need_encodings)
    (List.length passing >= need_encodings);
  Buffer.add_string json
    (Printf.sprintf
       ",\n  \"gate\": { \"op\": \"send_dirents\", \"bytes\": 65536, \
        \"min_speedup\": %.2f, \"required_encodings\": %d, \
        \"rows\": [%s], \"passing_encodings\": [%s], \"passed\": %b }"
       min_speedup need_encodings
       (String.concat ", "
          (List.map
             (fun (ename, (e, d, c)) ->
               Printf.sprintf
                 "{ \"encoding\": %S, \"encode_speedup\": %.3f, \
                  \"decode_speedup\": %.3f, \"combined_speedup\": %.3f }"
                 ename e d c)
             !gate_rows))
       (String.concat ", "
          (List.map (fun (ename, _) -> Printf.sprintf "%S" ename) passing))
       (List.length passing >= need_encodings));
  Buffer.add_string json
    (Printf.sprintf ",\n  \"self_check_failed\": %b\n}\n" !stage_failed);
  (match Obs_json.parse (Buffer.contents json) with
  | Ok _ -> ()
  | Error msg -> check (Printf.sprintf "BENCH_5.json parses: %s" msg) false);
  let oc = open_out "BENCH_5.json" in
  Buffer.output_buffer oc json;
  close_out oc;
  if !stage_failed then
    print_endline "\nstage: SELF-CHECK FAILURES above; exiting non-zero"
  else
    print_endline
      "\nall byte-identity, decode-equality, truncation, and speedup-gate \
       checks passed";
  print_endline "wrote BENCH_5.json\n"

(* ------------------------------------------------------------------ *)
(* gateway - fused forward relaying vs decode-then-reencode             *)
(* ------------------------------------------------------------------ *)

(* The forward-plan artifact: the fused relay ({!Stub_forward}) against
   the materializing decode-then-reencode baseline, swept over payload
   sizes and same-/cross-encoding pairs.  Writes BENCH_6.json.
   Self-checks:
   - every cell's fused output is byte-identical to the baseline's, and
     its plan is clean under {!Plan_verify.check_fplan};
   - a simulator round trip through {!Rpc_gateway} (client -> proxy ->
     backend echo) answers every request with the client's own payload
     bytes;
   - the tentpole gates (skipped under --no-forward): on 64KB
     same-encoding integer arrays the fused relay is >= 1.5x the
     baseline, and the payload moves by reference —
     forward.copied_bytes stays 0 and forward.fallback_fields stays 0
     while forward.borrowed_bytes covers the array (it sits above the
     borrow threshold, so Mbuf.transfer splices instead of copying).
   [--no-forward] disables fusion globally (Fplan_compile.set_enabled):
   every relay then runs the whole-message materialize fallback behind
   the forward interface; the parity cells still must agree, and the
   gates are recorded as not applied. *)

let gateway_failed = ref false

let obs_counter name =
  List.fold_left
    (fun acc s ->
      match s with Obs.Scounter (n, v) when n = name -> v | _ -> acc)
    0 (Obs.snapshot ())

let gateway () =
  print_endline "============================================================";
  print_endline " gateway - fused forward relaying vs decode-then-reencode";
  print_endline "============================================================";
  let check what ok =
    if not ok then begin
      gateway_failed := true;
      Printf.printf "  SELF-CHECK FAILED: %s\n" what
    end
  in
  let encs =
    [ ("xdr", Encoding.xdr); ("cdr", Encoding.cdr);
      ("mach3", Encoding.mach3); ("fluke", Encoding.fluke) ]
  in
  let pairs =
    (* the two same-encoding gate pairs run in every mode *)
    if !smoke then [ ("xdr", "xdr"); ("cdr", "cdr"); ("cdr", "xdr") ]
    else
      [ ("xdr", "xdr"); ("cdr", "cdr"); ("cdr", "xdr"); ("xdr", "cdr");
        ("cdr", "fluke"); ("fluke", "mach3") ]
  in
  let payloads = if !full then [ `Ints; `Rects; `Dirents ] else [ `Ints; `Dirents ] in
  let sizes =
    if !smoke then [ 65536 ]
    else if !full then [ 4096; 65536; 1048576 ]
    else [ 4096; 65536 ]
  in
  let min_speedup = 1.5 in
  let fwd_on = Fplan_compile.enabled () in
  let json = Buffer.create 4096 in
  Buffer.add_string json
    (Printf.sprintf
       "{\n  \"artifact\": \"gateway\",\n  \"smoke\": %b,\n\
       \  \"forward_enabled\": %b,\n  \"borrow_threshold\": %d,\n\
       \  \"rows\": ["
       !smoke fwd_on (Mbuf.borrow_threshold ()));
  Printf.printf "\n%-12s %-13s %9s %12s %10s %8s %10s %9s\n" "pair" "workload"
    "wire" "baseline ns" "fused ns" "speedup" "borrowed" "copied";
  let first = ref true in
  (* same-encoding 64KB ints rows feed the gates:
     (pair, speedup, borrowed, copied, fallbacks, payload bytes) *)
  let gate_rows = ref [] in
  List.iter
    (fun (sname, dname) ->
      let src = List.assoc sname encs and dst = List.assoc dname encs in
      let style =
        match sname with "cdr" -> `Corba | "xdr" -> `Rpcgen | _ -> `Fluke
      in
      let pc = Paper_fixtures.bench_presc style in
      List.iter
        (fun payload ->
          let op = Paper_fixtures.op_of_payload payload in
          let spec = Paper_fixtures.request_spec pc ~op in
          let mint = spec.Paper_fixtures.ms_mint
          and named = spec.Paper_fixtures.ms_named in
          let roots = spec.Paper_fixtures.ms_roots in
          let droots =
            List.map Stub_opt.to_dplan_droot spec.Paper_fixtures.ms_droots
          in
          List.iter
            (fun bytes ->
              let tag = Printf.sprintf "%s->%s/%s/%dB" sname dname op bytes in
              let value = Paper_fixtures.payload payload ~bytes in
              let enc_src =
                Stub_opt.compile_encoder ~enc:src ~mint ~named roots
              in
              let buf = Mbuf.create (bytes + 8192) in
              enc_src buf [| value |];
              let wire = Mbuf.contents buf in
              let wlen = Bytes.length wire in
              (* the materializing baseline: decode every field to a
                 Value.t, re-encode under the destination *)
              let dec =
                Stub_opt.compile_decoder ~enc:src ~mint ~named
                  spec.Paper_fixtures.ms_droots
              in
              let re = Stub_opt.compile_encoder ~enc:dst ~mint ~named roots in
              let baseline r w = re w (dec r) in
              let plan =
                Stub_forward.forward_plan ~src ~dst ~mint ~named droots roots
              in
              (match Plan_verify.check_fplan plan with
              | Ok () -> ()
              | Error e ->
                  check
                    (tag ^ ": forward verifier clean: "
                    ^ Plan_verify.error_to_string e)
                    false);
              (* the tier the production wrapper settles on: staged
                 when staging is enabled and the plan has a flat form
                 (the baseline's cached encoder/decoder closures promote
                 the same way under measurement) *)
              let fused =
                match
                  if Opt_config.stage_enabled () then
                    Stub_forward.staged_forward_of_plan plan
                  else None
                with
                | Some f -> f
                | None -> Stub_forward.forward_of_plan plan
              in
              let run_once f =
                let w = Mbuf.create (wlen + 8192) in
                f (Mbuf.reader_of_bytes wire) w;
                Mbuf.contents w
              in
              let base_out = run_once baseline in
              let bor0 = obs_counter "forward.borrowed_bytes"
              and cop0 = obs_counter "forward.copied_bytes"
              and fb0 = obs_counter "forward.fallback_fields"
              and bsw0 = obs_counter "forward.bswap_bytes" in
              let fused_out = run_once fused in
              let borrowed = obs_counter "forward.borrowed_bytes" - bor0
              and copied = obs_counter "forward.copied_bytes" - cop0
              and fallbacks = obs_counter "forward.fallback_fields" - fb0
              and bswapped = obs_counter "forward.bswap_bytes" - bsw0 in
              let identical = Bytes.equal fused_out base_out in
              check (tag ^ ": fused byte-identical to decode-then-reencode")
                identical;
              let time which f =
                let w = Mbuf.create (wlen + 8192) in
                let ns =
                  measure_ns
                    (tag ^ "/" ^ which)
                    (fun () ->
                      Mbuf.reset w;
                      f (Mbuf.reader_of_bytes wire) w)
                in
                if Float.is_nan ns then 0. else ns
              in
              let ns_b = time "baseline" baseline in
              let ns_f = time "fused" fused in
              let sp = if ns_f > 0. then ns_b /. ns_f else 0. in
              Printf.printf
                "%-12s %-13s %9d %12.0f %10.0f %7.2fx %10d %9d\n"
                (sname ^ "->" ^ dname)
                op wlen ns_b ns_f sp borrowed copied;
              if sname = dname && payload = `Ints && bytes = 65536 then
                gate_rows :=
                  !gate_rows
                  @ [ (sname, sp, borrowed, copied, fallbacks, bytes) ];
              Buffer.add_string json
                (Printf.sprintf
                   "%s\n    { \"src\": %S, \"dst\": %S, \"op\": %S, \
                    \"bytes\": %d, \"wire_bytes\": %d, \"baseline_ns\": \
                    %.0f, \"fused_ns\": %.0f, \"speedup\": %.3f, \
                    \"borrowed_bytes\": %d, \"copied_bytes\": %d, \
                    \"fallback_fields\": %d, \"bswap_bytes\": %d, \
                    \"identical\": %b }"
                   (if !first then "" else ",")
                   sname dname op bytes wlen ns_b ns_f sp borrowed copied
                   fallbacks bswapped identical);
              first := false)
            sizes)
        payloads)
    pairs;
  Buffer.add_string json "\n  ]";
  (* -- the simulator round trip through the proxy topology ----------- *)
  let requests = if !smoke then 16 else 64 in
  let sim = Sim_core.create () in
  let gw =
    Rpc_gateway.create ~sim ~forward:fwd_on ~src:Encoding.cdr
      ~dst:Encoding.xdr ()
  in
  let pc = Paper_fixtures.bench_presc `Corba in
  let ms =
    Paper_fixtures.request_spec pc ~op:(Paper_fixtures.op_of_payload `Dirents)
  in
  Rpc_gateway.register gw ms ~iface:1 ~op:1;
  let vals = [| Paper_fixtures.payload `Dirents ~bytes:600 |] in
  let frame = Rpc_gateway.client_frame gw ms ~iface:1 ~op:1 ~seq:0 vals in
  let expect = Bytes.sub frame 16 (Bytes.length frame - 16) in
  let ok = ref 0 and mismatched = ref 0 in
  let conn =
    Rpc_gateway.connect gw ~deliver:(fun data ->
        List.iter
          (fun (status, _seq, pl) ->
            if status = Rpc_serve.Sok && Bytes.equal pl expect then incr ok
            else incr mismatched)
          (Rpc_serve.parse_replies data))
  in
  for seq = 0 to requests - 1 do
    let f = Bytes.copy frame in
    Bytes.set_int32_be f 12 (Int32.of_int seq);
    (* paced below the backend's service rate (150us fixed per request)
       so backpressure shedding — covered by the serve artifact — stays
       out of this byte-identity check *)
    Sim_core.schedule sim ~delay:(float_of_int seq *. 200e-6) (fun () ->
        Rpc_gateway.send conn f)
  done;
  Sim_core.run sim;
  let gst = Rpc_gateway.stats gw in
  Printf.printf
    "\ngateway round trip (cdr -> xdr, dirents 600B, %s relay): %d/%d \
     echoed byte-identically\n"
    (if fwd_on then "fused" else "materialize-fallback")
    !ok requests;
  check "gateway answers every request with the request's own bytes"
    (!ok = requests && !mismatched = 0);
  check "gateway relays without errors or leftovers"
    (gst.Rpc_gateway.gs_relay_errors = 0 && gst.Rpc_gateway.gs_pending = 0);
  (* -- the tentpole gates -------------------------------------------- *)
  if fwd_on then begin
    check "same-encoding 64KB ints gate rows present" (!gate_rows <> []);
    Printf.printf
      "\n64KB same-encoding ints gates (fused >= %.2fx, payload borrowed \
       not copied):\n"
      min_speedup;
    List.iter
      (fun (pair, sp, bor, cop, fb, bytes) ->
        let zero_copy = cop = 0 && fb = 0 && bor >= bytes - 64 in
        Printf.printf
          "  %-6s %5.2fx  borrowed %d  copied %d  fallbacks %d  %s\n" pair sp
          bor cop fb
          (if sp >= min_speedup && zero_copy then "pass" else "FAIL");
        check
          (Printf.sprintf "%s->%s: fused relay >= %.2fx baseline at 64KB"
             pair pair min_speedup)
          (sp >= min_speedup);
        check
          (Printf.sprintf
             "%s->%s: zero payload bytes copied above the borrow threshold"
             pair pair)
          zero_copy)
      !gate_rows
  end
  else
    print_endline
      "\nforward fusion disabled (--no-forward): gates not applied, parity \
       cells only";
  let gate_passed =
    (not fwd_on)
    || (!gate_rows <> []
       && List.for_all
            (fun (_, sp, bor, cop, fb, bytes) ->
              sp >= min_speedup && cop = 0 && fb = 0 && bor >= bytes - 64)
            !gate_rows)
  in
  Buffer.add_string json
    (Printf.sprintf
       ",\n  \"gate\": { \"op\": \"send_ints\", \"bytes\": 65536, \
        \"min_speedup\": %.2f, \"applied\": %b, \"rows\": [%s], \"passed\": \
        %b },\n\
       \  \"gateway_roundtrip\": { \"src\": \"cdr\", \"dst\": \"xdr\", \
        \"requests\": %d, \"ok\": %d, \"relay_errors\": %d, \"forward\": %b }"
       min_speedup fwd_on
       (String.concat ", "
          (List.map
             (fun (pair, sp, bor, cop, fb, _) ->
               Printf.sprintf
                 "{ \"encoding\": %S, \"speedup\": %.3f, \"borrowed_bytes\": \
                  %d, \"copied_bytes\": %d, \"fallback_fields\": %d }"
                 pair sp bor cop fb)
             !gate_rows))
       gate_passed requests !ok gst.Rpc_gateway.gs_relay_errors fwd_on);
  Buffer.add_string json
    (Printf.sprintf ",\n  \"self_check_failed\": %b\n}\n" !gateway_failed);
  (match Obs_json.parse (Buffer.contents json) with
  | Ok _ -> ()
  | Error msg -> check (Printf.sprintf "BENCH_6.json parses: %s" msg) false);
  let oc = open_out "BENCH_6.json" in
  Buffer.output_buffer oc json;
  close_out oc;
  if !gateway_failed then
    print_endline "\ngateway: SELF-CHECK FAILURES above; exiting non-zero"
  else
    print_endline
      "\nall byte-identity, verifier, round-trip, throughput-gate, and \
       zero-copy checks passed";
  print_endline "wrote BENCH_6.json\n"

(* ------------------------------------------------------------------ *)
(* selfdesc - the value-dependent encodings (msgpack, cbor)             *)
(* ------------------------------------------------------------------ *)

(* The variable-header artifact: the paper's three workloads through
   the self-describing encodings added by the Put_varhead /
   D_get_varhead op class, both directions, at 4KB and 64KB.  Writes
   BENCH_7.json.  Every cell self-checks:
   - the encode and decode plans are clean under {!Plan_verify}
     (variable emits dominated by covering worst-case reservations);
   - the plan executor's bytes are identical to the naive
     walk-the-types engine's, and to the staged flat closure's when the
     plan has one;
   - tier-0 decode returns the input value ({!Value.equal}) and
     consumes the whole message — no worst-case slack may leak into
     the stream position.
   There is no speedup gate: these encodings trade throughput for
   self-description, so the artifact records absolute rates only. *)

let selfdesc_failed = ref false

let selfdesc () =
  print_endline "============================================================";
  print_endline " selfdesc - value-dependent wire formats (msgpack, cbor)";
  print_endline "============================================================";
  let check what ok =
    if not ok then begin
      selfdesc_failed := true;
      Printf.printf "  SELF-CHECK FAILED: %s\n" what
    end
  in
  let sizes = [ 4096; 65536 ] in
  let json = Buffer.create 4096 in
  Buffer.add_string json
    (Printf.sprintf
       "{\n  \"artifact\": \"selfdesc\",\n  \"smoke\": %b,\n  \"rows\": ["
       !smoke);
  Printf.printf "\n%-8s %-13s %9s %12s %10s %10s %10s\n" "enc" "workload"
    "wire" "encode ns" "MB/s" "decode ns" "MB/s";
  let first = ref true in
  let pc = Paper_fixtures.bench_presc `Corba in
  List.iter
    (fun (ename, enc) ->
      List.iter
        (fun payload ->
          let op = Paper_fixtures.op_of_payload payload in
          let spec = Paper_fixtures.request_spec pc ~op in
          let mint = spec.Paper_fixtures.ms_mint
          and named = spec.Paper_fixtures.ms_named in
          List.iter
            (fun bytes ->
              let tag = Printf.sprintf "%s/%s/%dB" ename op bytes in
              let value = Paper_fixtures.payload payload ~bytes in
              let plan =
                Plan_cache.plan ~enc ~mint ~named spec.Paper_fixtures.ms_roots
              in
              let plan_ok =
                match Plan_verify.check_plan plan with
                | Ok () -> true
                | Error e ->
                    check
                      (tag ^ ": encode plan verifies: "
                      ^ Plan_verify.error_to_string e)
                      false;
                    false
              in
              let droots =
                List.map
                  (function
                    | Stub_opt.Dconst_int (v, k) ->
                        Dplan_compile.Dconst_int (v, k)
                    | Stub_opt.Dconst_str s -> Dplan_compile.Dconst_str s
                    | Stub_opt.Dvalue (i, p) -> Dplan_compile.Dvalue (i, p))
                  spec.Paper_fixtures.ms_droots
              in
              let dplan = Plan_cache.dplan ~enc ~mint ~named droots in
              let dplan_ok =
                match Plan_verify.check_dplan dplan with
                | Ok () -> true
                | Error e ->
                    check
                      (tag ^ ": decode plan verifies: "
                      ^ Plan_verify.error_to_string e)
                      false;
                    false
              in
              (* -- byte identity across the engine tiers ------------- *)
              let enc0 = Stub_opt.encoder_of_plan ~enc plan in
              let buf0 = Mbuf.create (bytes + 8192) in
              enc0 buf0 [| value |];
              let wire = Mbuf.contents buf0 in
              let wlen = Bytes.length wire in
              let naive =
                Stub_naive.compile_encoder ~enc ~mint ~named
                  spec.Paper_fixtures.ms_roots
              in
              let bufn = Mbuf.create (bytes + 8192) in
              naive bufn [| value |];
              let identical = Bytes.equal wire (Mbuf.contents bufn) in
              check (tag ^ ": plan bytes identical to naive bytes") identical;
              (match Stub_opt.staged_encoder_of_plan ~enc plan with
              | Some staged ->
                  let bufs = Mbuf.create (bytes + 8192) in
                  staged bufs [| value |];
                  check
                    (tag ^ ": staged bytes identical to plan bytes")
                    (Bytes.equal wire (Mbuf.contents bufs))
              | None -> ());
              (* -- decode: value equality, whole-message consumption - *)
              let dec0 = Stub_opt.decoder_of_dplan ~enc dplan in
              let r = Mbuf.reader_of_bytes wire in
              let decoded = (dec0 r).(0) in
              let decoded_equal = Value.equal decoded value in
              check (tag ^ ": decode returns the input value") decoded_equal;
              let consumed = Mbuf.remaining r = 0 in
              check
                (tag
               ^ ": decode consumes the whole message (no reservation slack \
                  on the wire)")
                consumed;
              (* -- rates --------------------------------------------- *)
              let time_encode () =
                let buf = Mbuf.create (bytes + 8192) in
                let ns =
                  measure_ns (tag ^ "/encode") (fun () ->
                      Mbuf.reset buf;
                      enc0 buf [| value |])
                in
                if Float.is_nan ns then 0. else ns
              in
              let time_decode () =
                let ns =
                  measure_ns (tag ^ "/decode") (fun () ->
                      ignore
                        (dec0 (Mbuf.reader_of_bytes wire) : Value.t array))
                in
                if Float.is_nan ns then 0. else ns
              in
              let ns_e = time_encode () in
              let ns_d = time_decode () in
              Printf.printf
                "%-8s %-13s %9d %12.0f %10.1f %10.0f %10.1f\n" ename op wlen
                ns_e (mbps wlen ns_e) ns_d (mbps wlen ns_d);
              Buffer.add_string json
                (Printf.sprintf
                   "%s\n    { \"encoding\": %S, \"op\": %S, \"bytes\": %d, \
                    \"wire_bytes\": %d, \"encode_ns\": %.0f, \
                    \"decode_ns\": %.0f, \"identical\": %b, \
                    \"decoded_equal\": %b, \"consumed\": %b, \
                    \"plan_verified\": %b, \"dplan_verified\": %b }"
                   (if !first then "" else ",")
                   ename op bytes wlen ns_e ns_d identical decoded_equal
                   consumed plan_ok dplan_ok);
              first := false)
            sizes)
        [ `Ints; `Rects; `Dirents ])
    [ ("msgpack", Encoding.msgpack); ("cbor", Encoding.cbor) ];
  Buffer.add_string json "\n  ]";
  Buffer.add_string json
    (Printf.sprintf ",\n  \"self_check_failed\": %b\n}\n" !selfdesc_failed);
  (match Obs_json.parse (Buffer.contents json) with
  | Ok _ -> ()
  | Error msg -> check (Printf.sprintf "BENCH_7.json parses: %s" msg) false);
  let oc = open_out "BENCH_7.json" in
  Buffer.output_buffer oc json;
  close_out oc;
  if !selfdesc_failed then
    print_endline "\nselfdesc: SELF-CHECK FAILURES above; exiting non-zero"
  else
    print_endline
      "\nall verifier, byte-identity, decode-equality, and consumption \
       checks passed";
  print_endline "wrote BENCH_7.json\n"

(* ------------------------------------------------------------------ *)
(* tail - request tracing, phase attribution, and the flight recorder  *)
(* ------------------------------------------------------------------ *)

(* The observability artifact: the request recorder ({!Obs_request})
   over the serve and gateway stacks.  Writes BENCH_8.json with:
   - the per-phase attribution matrix for the serve sweep: p50/p99 of
     each of the eight request phases plus each phase's share of total
     round-trip time, per connection count (shares must sum to 1 — the
     phases telescope exactly, so unattributed time is a bug);
   - reconciliation self-checks: a hand-rolled client records its own
     send/deliver instants with the recorder's rounding rule, and every
     completed record's eight phase durations must sum to the
     client-observed round trip to the exact nanosecond — on the direct
     server, and across both gateway hops stitched by trace id;
   - exemplar coverage: every populated phase histogram must retain a
     trace-id exemplar at its p99 bucket, so a tail report always names
     a concrete request (gated >= 0.9);
   - flight-recorder behavior under 1-in-8 head sampling: shed records
     always land in the ring, Ok records are sampled, the ring stays
     bounded;
   - the overhead gate: with the recorder merely disabled (the
     load-and-branch no-op path) workload throughput must sit within 3%
     of a run in a process state that never enabled it.  Time is
     virtual, so any difference at all means the recorder leaked
     virtual-time cost into the serve path.
   Any failure makes the whole run exit non-zero.
   [--smoke] shrinks the sweeps so CI runs in seconds. *)

let tail_failed = ref false

let tail () =
  print_endline "============================================================";
  print_endline " tail - request tracing, phase attribution, flight recorder";
  print_endline "============================================================";
  let check what ok =
    if not ok then begin
      tail_failed := true;
      Printf.printf "  SELF-CHECK FAILED: %s\n" what
    end
  in
  let obs_hist name =
    List.fold_left
      (fun acc s ->
        match s with Obs.Shist (n, v) when n = name -> Some v | _ -> acc)
      None (Obs.snapshot ())
  in
  let all_phases =
    [
      Obs_request.Ingress_wire; Obs_request.Header_parse;
      Obs_request.Queue_wait; Obs_request.Decode; Obs_request.Handler;
      Obs_request.Encode; Obs_request.Flush_wait; Obs_request.Egress_wire;
    ]
  in
  let requests_per_conn = if !smoke then 60 else 300 in
  let rps_point () =
    (Rpc_serve.run_workload ~requests_per_conn ~conns:32 ())
      .Rpc_serve.sp_rps
  in
  (* -- recorder-absent baseline --------------------------------------- *)
  (* Must run before this process first enables the recorder: this is
     the reference the disabled-recorder gate compares against. *)
  let rps_absent = rps_point () in

  (* -- phase attribution sweep, recorder on --------------------------- *)
  Obs_request.set_enabled true;
  Obs_request.configure ~sample_every:8 ();
  let json = Buffer.create 4096 in
  Buffer.add_string json
    (Printf.sprintf
       "{\n  \"artifact\": \"tail\",\n  \"smoke\": %b,\n\
       \  \"requests_per_conn\": %d,\n  \"sweep\": ["
       !smoke requests_per_conn);
  let first_point = ref true in
  List.iter
    (fun conns ->
      Obs_request.clear ();
      Obs_request.reset_metrics ();
      let p = Rpc_serve.run_workload ~requests_per_conn ~conns () in
      let tag = Printf.sprintf "%d conns" conns in
      match obs_hist "serve.phase.rtt_ns" with
      | None -> check (tag ^ ": rtt histogram registered") false
      | Some rtt ->
          check (tag ^ ": rtt histogram populated") (rtt.Obs.count > 0);
          let rows =
            List.map
              (fun ph ->
                let name = Obs_request.phase_name ph in
                match obs_hist (Printf.sprintf "serve.phase.%s_ns" name) with
                | None ->
                    check
                      (Printf.sprintf "%s: %s histogram registered" tag name)
                      false;
                    (name, None)
                | Some s -> (name, Some s))
              all_phases
          in
          Printf.printf
            "\n-- %d conns: %.0f rps, rtt p50 %.0f ns p99 %.0f ns --\n" conns
            p.Rpc_serve.sp_rps rtt.Obs.p50 rtt.Obs.p99;
          Printf.printf "  %-14s %12s %12s %8s\n" "phase" "p50_ns" "p99_ns"
            "share";
          let share_sum = ref 0. in
          let populated = ref 1 and with_exemplar = ref 0 in
          (match rtt.Obs.p99_exemplar with
          | Some _ -> incr with_exemplar
          | None -> ());
          let phase_json =
            String.concat ", "
              (List.filter_map
                 (fun (name, s) ->
                   match s with
                   | None -> None
                   | Some s ->
                       let share =
                         if rtt.Obs.sum > 0. then s.Obs.sum /. rtt.Obs.sum
                         else 0.
                       in
                       share_sum := !share_sum +. share;
                       if s.Obs.count > 0 then begin
                         incr populated;
                         match s.Obs.p99_exemplar with
                         | Some _ -> incr with_exemplar
                         | None -> ()
                       end;
                       Printf.printf "  %-14s %12.0f %12.0f %7.1f%%\n" name
                         s.Obs.p50 s.Obs.p99 (100. *. share);
                       Some
                         (Printf.sprintf
                            "{ \"phase\": %S, \"p50_ns\": %.0f, \"p99_ns\": \
                             %.0f, \"share\": %.4f }"
                            name s.Obs.p50 s.Obs.p99 share))
                 rows)
          in
          let coverage =
            float_of_int !with_exemplar /. float_of_int (max 1 !populated)
          in
          check
            (tag ^ ": phase shares sum to 1 (exact attribution)")
            (Float.abs (!share_sum -. 1.) < 1e-6);
          check
            (Printf.sprintf "%s: p99 exemplar coverage %.2f >= 0.9" tag
               coverage)
            (coverage >= 0.9);
          Buffer.add_string json
            (Printf.sprintf
               "%s\n    { \"conns\": %d, \"rps\": %.1f, \"ok\": %d, \
                \"requests\": %d, \"rtt_p50_ns\": %.0f, \"rtt_p99_ns\": \
                %.0f, \"share_sum\": %.6f, \"exemplar_coverage\": %.4f, \
                \"flight\": { \"sampled\": %d, \"dropped\": %d, \"ring\": \
                %d, \"capacity\": %d },\n\
               \      \"phases\": [ %s ] }"
               (if !first_point then "" else ",")
               conns p.Rpc_serve.sp_rps p.Rpc_serve.sp_ok
               p.Rpc_serve.sp_requests rtt.Obs.p50 rtt.Obs.p99 !share_sum
               coverage
               (Obs_request.sampled_count ())
               (Obs_request.dropped_count ())
               (List.length (Obs_request.ring_records ()))
               (Obs_request.ring_capacity ())
               phase_json);
          first_point := false;
          (* the 64-connection point overruns the budget, so shed
             records must have been force-pushed past head sampling *)
          if conns = 64 then begin
            check "64 conns: head sampling drops some Ok records"
              (Obs_request.dropped_count () > 0);
            check "64 conns: shed outcomes always land in the ring"
              (List.exists
                 (fun r -> Obs_request.outcome r = Obs_request.Rshed)
                 (Obs_request.ring_records ()));
            check "64 conns: flight ring stays bounded"
              (List.length (Obs_request.ring_records ())
              <= Obs_request.ring_capacity ())
          end)
    [ 1; 8; 32; 64 ];
  Buffer.add_string json "\n  ]";

  (* -- exact reconciliation: direct serve ----------------------------- *)
  Obs_request.configure ();
  let rec_checked = ref 0 and rec_failures = ref 0 in
  let conns = 8 and per_conn = if !smoke then 20 else 50 in
  let finished : (int * int, Obs_request.record) Hashtbl.t =
    Hashtbl.create 256
  in
  Obs_request.set_sink
    (Some
       (fun r ->
         Hashtbl.replace finished (Obs_request.conn r, Obs_request.seq r) r));
  let sim = Sim_core.create () in
  let server =
    Rpc_serve.create ~sim ~ingress:(Link.ethernet_100 ~sim)
      ~egress:(Link.ethernet_100 ~sim) ()
  in
  let pc = Paper_fixtures.bench_presc `Rpcgen in
  let ms = Paper_fixtures.request_spec pc ~op:"send_ints" in
  let spec = Rpc_serve.echo_op ~iface:1 ~op:1 ~enc:Encoding.xdr ms in
  Rpc_serve.register server spec;
  let value = Paper_fixtures.payload `Ints ~bytes:1024 in
  for c = 0 to conns - 1 do
    let cid = ref (-1) in
    let send_ns : (int, int) Hashtbl.t = Hashtbl.create 64 in
    let conn =
      Rpc_serve.connect server ~deliver:(fun data ->
          let now = Obs_request.ns_of_s (Sim_core.now sim) in
          List.iter
            (fun (status, seq, _payload) ->
              if status = Rpc_serve.Sok then begin
                let rtt = now - Hashtbl.find send_ns seq in
                incr rec_checked;
                match Hashtbl.find_opt finished (!cid, seq) with
                | Some r ->
                    if
                      not
                        (Obs_request.phase_total_ns r = rtt
                        && Obs_request.rtt_ns r = rtt)
                    then incr rec_failures
                | None -> incr rec_failures
              end)
            (Rpc_serve.parse_replies data))
    in
    cid := Rpc_serve.conn_id conn;
    for k = 0 to per_conn - 1 do
      Sim_core.schedule sim
        ~delay:
          ((float_of_int k *. 2e-3) +. (float_of_int c *. 160e-6))
        (fun () ->
          Hashtbl.replace send_ns k
            (Obs_request.ns_of_s (Sim_core.now sim));
          Rpc_serve.send conn (Rpc_serve.request_frame spec ~seq:k [| value |]))
    done
  done;
  Sim_core.run sim;
  Printf.printf
    "\nreconciliation, direct serve: %d/%d Ok requests, phase sums == \
     client RTT exactly: %s\n"
    !rec_checked (conns * per_conn)
    (if !rec_failures = 0 then "yes" else
       Printf.sprintf "NO (%d mismatches)" !rec_failures);
  check "direct serve: reconciliation covered the workload"
    (!rec_checked >= conns * per_conn * 9 / 10);
  check "direct serve: every phase sum equals the client RTT exactly"
    (!rec_failures = 0);
  Buffer.add_string json
    (Printf.sprintf
       ",\n  \"reconcile\": { \"requests\": %d, \"checked\": %d, \
        \"failures\": %d }"
       (conns * per_conn) !rec_checked !rec_failures);

  (* -- exact reconciliation: both gateway hops ------------------------ *)
  Obs_request.clear ();
  let by_trace : (int, Obs_request.record list) Hashtbl.t =
    Hashtbl.create 64
  in
  Obs_request.set_sink
    (Some
       (fun r ->
         let t = Obs_request.trace_id r in
         Hashtbl.replace by_trace t
           (r :: Option.value ~default:[] (Hashtbl.find_opt by_trace t))));
  let gw_requests = if !smoke then 8 else 32 in
  let sim = Sim_core.create () in
  let gw =
    Rpc_gateway.create ~sim ~src:Encoding.cdr ~dst:Encoding.xdr ()
  in
  let pcg = Paper_fixtures.bench_presc `Corba in
  let msg = Paper_fixtures.request_spec pcg ~op:"send_ints" in
  Rpc_gateway.register gw msg ~iface:1 ~op:1;
  let gvals = [| Paper_fixtures.payload `Ints ~bytes:1024 |] in
  let gsend_ns : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let client_rtt : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let gconn =
    Rpc_gateway.connect gw ~deliver:(fun data ->
        let now = Obs_request.ns_of_s (Sim_core.now sim) in
        List.iter
          (fun (status, seq, _payload) ->
            if status = Rpc_serve.Sok then
              Hashtbl.replace client_rtt seq (now - Hashtbl.find gsend_ns seq))
          (Rpc_serve.parse_replies data))
  in
  for seq = 0 to gw_requests - 1 do
    Sim_core.schedule sim ~delay:(float_of_int seq *. 2e-3) (fun () ->
        let f = Rpc_gateway.client_frame gw msg ~iface:1 ~op:1 ~seq gvals in
        Hashtbl.replace gsend_ns seq (Obs_request.ns_of_s (Sim_core.now sim));
        Rpc_gateway.send gconn f)
  done;
  Sim_core.run sim;
  let gw_checked = ref 0 and gw_failures = ref 0 in
  Hashtbl.iter
    (fun _t recs ->
      let hop0 = List.find_opt (fun r -> Obs_request.hop r = 0) recs in
      let hop1 = List.find_opt (fun r -> Obs_request.hop r = 1) recs in
      match (hop0, hop1) with
      | Some h0, Some h1 -> (
          match Hashtbl.find_opt client_rtt (Obs_request.seq h0) with
          | Some rtt ->
              incr gw_checked;
              if
                not
                  (Obs_request.phase_total_ns h0
                   + Obs_request.phase_total_ns h1
                   = rtt
                  && Obs_request.backend_ns h0
                     = Obs_request.phase_total_ns h1)
              then incr gw_failures
          | None -> incr gw_failures)
      | _ -> incr gw_failures)
    by_trace;
  Printf.printf
    "reconciliation, gateway (cdr -> xdr): %d/%d traces, hop0 + hop1 phase \
     sums == client RTT exactly: %s\n"
    !gw_checked gw_requests
    (if !gw_failures = 0 then "yes" else
       Printf.sprintf "NO (%d mismatches)" !gw_failures);
  check "gateway: every request produced both hop records"
    (!gw_checked = gw_requests);
  check "gateway: two-hop phase sums equal the client RTT exactly"
    (!gw_failures = 0);
  Buffer.add_string json
    (Printf.sprintf
       ",\n  \"gateway_reconcile\": { \"requests\": %d, \"checked\": %d, \
        \"failures\": %d }"
       gw_requests !gw_checked !gw_failures);

  (* -- overhead gate: disabled recorder must be free ------------------ *)
  Obs_request.set_sink None;
  Obs_request.clear ();
  let rps_on = rps_point () in
  Obs_request.set_enabled false;
  let rps_off = rps_point () in
  let max_overhead = 0.03 in
  let overhead_off = Float.abs (rps_off -. rps_absent) /. rps_absent in
  Printf.printf
    "\noverhead gate: %.0f rps recorder-absent, %.0f disabled (%.2f%% \
     apart, gate %.0f%%), %.0f enabled\n"
    rps_absent rps_off (100. *. overhead_off) (100. *. max_overhead) rps_on;
  check
    (Printf.sprintf
       "recorder-off throughput within %.0f%% of recorder-absent"
       (100. *. max_overhead))
    (overhead_off <= max_overhead);
  Buffer.add_string json
    (Printf.sprintf
       ",\n  \"overhead_gate\": { \"rps_absent\": %.1f, \"rps_off\": %.1f, \
        \"rps_on\": %.1f, \"overhead_off\": %.6f, \"max_overhead\": %.2f, \
        \"passed\": %b }"
       rps_absent rps_off rps_on overhead_off max_overhead
       (overhead_off <= max_overhead));
  Obs_request.clear ();
  Buffer.add_string json
    (Printf.sprintf ",\n  \"self_check_failed\": %b\n}\n" !tail_failed);
  (match Obs_json.parse (Buffer.contents json) with
  | Ok _ -> ()
  | Error msg -> check (Printf.sprintf "BENCH_8.json parses: %s" msg) false);
  let oc = open_out "BENCH_8.json" in
  Buffer.output_buffer oc json;
  close_out oc;
  if !tail_failed then
    print_endline "\ntail: SELF-CHECK FAILURES above; exiting non-zero"
  else
    print_endline
      "\nall attribution, reconciliation, exemplar, sampling, and \
       overhead checks passed";
  print_endline "wrote BENCH_8.json\n"

(* ------------------------------------------------------------------ *)
(* Driver                                                               *)
(* ------------------------------------------------------------------ *)

let artifacts =
  [
    ("table1", table1); ("table2", table2); ("table3", table3);
    ("fig3", fig3); ("fig4", fig4); ("fig5", fig5); ("fig6", fig6);
    ("fig7", fig7); ("ablations", ablations); ("planopt", planopt);
    ("sgwire", sgwire); ("decplan", decplan); ("tracematrix", tracematrix);
    ("serve", serve); ("stage", stage); ("gateway", gateway);
    ("selfdesc", selfdesc); ("tail", tail);
  ]

let () =
  let chosen = ref [] in
  Array.iteri
    (fun i arg ->
      if i > 0 then
        match arg with
        | "--full" -> full := true
        | "--smoke" -> smoke := true
        | "--no-sg" ->
            (* ablation: disable scatter-gather borrowing everywhere,
               restoring the PR 1 contiguous-copy wire path *)
            Mbuf.set_sg_enabled false
        | "--no-views" ->
            (* ablation: skip the zero-copy decode cells in decplan *)
            no_views := true
        | "--no-forward" ->
            (* ablation: disable forward-plan fusion; the gateway
               artifact then measures the materialize fallback behind
               the same interface (its gates are recorded as skipped) *)
            Fplan_compile.set_enabled false
        | arg
          when String.length arg > 15
               && String.sub arg 0 15 = "--sg-threshold=" ->
            Mbuf.set_borrow_threshold
              (int_of_string (String.sub arg 15 (String.length arg - 15)))
        | "all" -> ()
        | name when List.mem_assoc name artifacts ->
            chosen := !chosen @ [ name ]
        | name ->
            Printf.eprintf
              "unknown artifact %S (expected: %s, all, --full, --smoke, \
               --no-sg, --no-views, --no-forward, --sg-threshold=N)\n"
              name
              (String.concat ", " (List.map fst artifacts));
            exit 1)
    Sys.argv;
  let to_run =
    match !chosen with [] -> List.map fst artifacts | names -> names
  in
  Printf.printf "Flick reproduction benchmarks (%s sizes; see EXPERIMENTS.md)\n\n"
    (if !full then "paper-scale" else "default");
  List.iter (fun name -> (List.assoc name artifacts) ()) to_run;
  if
    !planopt_failed || !sgwire_failed || !decplan_failed
    || !tracematrix_failed || !serve_failed || !stage_failed
    || !gateway_failed || !selfdesc_failed || !tail_failed
  then exit 1
